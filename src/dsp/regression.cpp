#include "dsp/regression.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/stats.hpp"

namespace witrack::dsp {

namespace {

void check_inputs(const std::vector<double>& x, const std::vector<double>& y) {
    if (x.size() != y.size())
        throw std::invalid_argument("regression: x/y length mismatch");
}

/// Weighted least squares for y = a + b x.
LineFit weighted_ols(const std::vector<double>& x, const std::vector<double>& y,
                     const std::vector<double>& w) {
    double sw = 0, swx = 0, swy = 0, swxx = 0, swxy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sw += w[i];
        swx += w[i] * x[i];
        swy += w[i] * y[i];
        swxx += w[i] * x[i] * x[i];
        swxy += w[i] * x[i] * y[i];
    }
    const double denom = sw * swxx - swx * swx;
    LineFit fit;
    if (sw <= 0 || std::abs(denom) < 1e-12 * std::max(1.0, sw * swxx)) return fit;
    fit.slope = (sw * swxy - swx * swy) / denom;
    fit.intercept = (swy - fit.slope * swx) / sw;
    fit.valid = true;
    return fit;
}

}  // namespace

LineFit fit_ols(const std::vector<double>& x, const std::vector<double>& y) {
    check_inputs(x, y);
    if (x.size() < 2) return {};
    return weighted_ols(x, y, std::vector<double>(x.size(), 1.0));
}

LineFit fit_theil_sen(const std::vector<double>& x, const std::vector<double>& y) {
    check_inputs(x, y);
    const std::size_t n = x.size();
    if (n < 2) return {};

    std::vector<double> slopes;
    slopes.reserve(n * (n - 1) / 2);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            const double dx = x[j] - x[i];
            if (std::abs(dx) < 1e-12) continue;
            slopes.push_back((y[j] - y[i]) / dx);
        }
    if (slopes.empty()) return {};

    LineFit fit;
    fit.slope = median(slopes);
    std::vector<double> intercepts(n);
    for (std::size_t i = 0; i < n; ++i) intercepts[i] = y[i] - fit.slope * x[i];
    fit.intercept = median(intercepts);
    fit.valid = true;
    return fit;
}

LineFit fit_huber(const std::vector<double>& x, const std::vector<double>& y,
                  double delta, std::size_t iterations) {
    check_inputs(x, y);
    if (x.size() < 2) return {};
    if (delta <= 0) throw std::invalid_argument("fit_huber: delta must be positive");

    LineFit fit = fit_ols(x, y);
    if (!fit.valid) return fit;

    std::vector<double> weights(x.size(), 1.0);
    for (std::size_t iter = 0; iter < iterations; ++iter) {
        // Scale delta by the robust residual spread (MAD) so the loss adapts
        // to the data's units.
        std::vector<double> abs_res(x.size());
        for (std::size_t i = 0; i < x.size(); ++i)
            abs_res[i] = std::abs(y[i] - fit.at(x[i]));
        double scale = median(abs_res) * 1.4826;
        if (scale < 1e-9) break;  // perfect fit
        const double threshold = delta * scale;

        for (std::size_t i = 0; i < x.size(); ++i)
            weights[i] = abs_res[i] <= threshold ? 1.0 : threshold / abs_res[i];

        const LineFit next = weighted_ols(x, y, weights);
        if (!next.valid) break;
        const double change =
            std::abs(next.slope - fit.slope) + std::abs(next.intercept - fit.intercept);
        fit = next;
        if (change < 1e-10) break;
    }
    return fit;
}

double fit_residual_stddev(const LineFit& fit, const std::vector<double>& x,
                           const std::vector<double>& y) {
    check_inputs(x, y);
    if (!fit.valid || x.empty()) return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double r = y[i] - fit.at(x[i]);
        acc += r * r;
    }
    return std::sqrt(acc / static_cast<double>(x.size()));
}

}  // namespace witrack::dsp
