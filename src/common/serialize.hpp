// State-serialization contract shared by the replay format and session
// snapshots. Two layers:
//
//  1. Raw little-helpers (write_raw / read_raw / read_or_throw / *_vec3)
//     over std::ostream/std::istream -- doubles stored verbatim, native
//     endianness. The Recorder/ReplaySource wire format is built directly
//     on these, so replay and snapshot framing cannot drift apart.
//
//  2. StateWriter / StateReader: a chunked, versioned, CRC-framed binary
//     layout for component state. Every stateful component implements
//         void save_state(common::StateWriter&) const;
//         void load_state(common::StateReader&);
//     writing fields in one flat, ordered stream inside a chunk owned by
//     the layer above (tracker, engine). The stream layout is:
//
//         header:  magic u32 | version u32
//         chunk:   tag u32 | payload_len u64 | payload bytes |
//                  crc32 u32 over (tag | payload_len | payload)
//         ...
//         end:     the "END " chunk (empty payload) terminates the stream
//
//     StateReader validates the WHOLE stream in its constructor -- magic,
//     version, every chunk's length bound and CRC -- before any component
//     state is touched, so a truncated or corrupt snapshot is rejected
//     atomically and the target object is left exactly as constructed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace witrack::common {

// ---------------------------------------------------------------------------
// Raw stream helpers (layer 1)
// ---------------------------------------------------------------------------

template <typename T>
void write_raw(std::ostream& out, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
bool read_raw(std::istream& in, T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    in.read(reinterpret_cast<char*>(&value), sizeof value);
    return static_cast<bool>(in);
}

/// read_raw or throw "<who>: truncated <what>".
template <typename T>
void read_or_throw(std::istream& in, T& value, const char* who, const char* what) {
    if (!read_raw(in, value))
        throw std::runtime_error(std::string(who) + ": truncated " + what);
}

/// Write/read any xyz triple (geom::Vec3 or compatible) as f64 x3.
template <typename V>
void write_vec3(std::ostream& out, const V& v) {
    write_raw(out, v.x);
    write_raw(out, v.y);
    write_raw(out, v.z);
}

template <typename V>
void read_vec3(std::istream& in, V& v, const char* who, const char* what) {
    read_or_throw(in, v.x, who, what);
    read_or_throw(in, v.y, who, what);
    read_or_throw(in, v.z, who, what);
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected polynomial 0xEDB88320) -- frames every chunk.
// ---------------------------------------------------------------------------

inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t crc = 0) {
    static const auto table = [] {
        std::vector<std::uint32_t> t(256);
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    const auto* p = static_cast<const unsigned char*>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
    return ~crc;
}

/// Four-character chunk tag as a u32 (first character in the low byte, so
/// the tag reads forward in a little-endian hex dump).
constexpr std::uint32_t chunk_tag(const char (&tag)[5]) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(tag[0])) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(tag[1])) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(tag[2])) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(tag[3])) << 24;
}

inline constexpr std::uint32_t kEndChunkTag = chunk_tag("END ");

/// Upper bound on a single chunk's payload. A corrupt length field must
/// fail cleanly, not drive an arbitrarily large allocation.
inline constexpr std::uint64_t kMaxChunkBytes = 1ull << 30;

// ---------------------------------------------------------------------------
// StateWriter (layer 2)
// ---------------------------------------------------------------------------

class StateWriter {
  public:
    StateWriter(std::ostream& out, std::uint32_t magic, std::uint32_t version)
        : out_(out) {
        write_raw(out_, magic);
        write_raw(out_, version);
    }

    /// Chunks buffer their payload so the length and CRC can be framed in
    /// front of it; fields may only be written between begin/end.
    void begin_chunk(const char (&tag)[5]) {
        if (in_chunk_) throw std::logic_error("StateWriter: chunk already open");
        tag_ = chunk_tag(tag);
        payload_.clear();
        in_chunk_ = true;
    }

    void end_chunk() {
        if (!in_chunk_) throw std::logic_error("StateWriter: no open chunk");
        emit(tag_, payload_);
        in_chunk_ = false;
    }

    /// Terminate the stream with the empty END chunk and verify the sink.
    void finish() {
        if (in_chunk_) throw std::logic_error("StateWriter: unterminated chunk");
        emit(kEndChunkTag, {});
        if (!out_) throw std::runtime_error("StateWriter: stream write failed");
    }

    // -- field writers (only valid inside a chunk) --
    void u8(std::uint8_t v) { append(&v, sizeof v); }
    void u32(std::uint32_t v) { append(&v, sizeof v); }
    void u64(std::uint64_t v) { append(&v, sizeof v); }
    void f64(double v) { append(&v, sizeof v); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    void str(std::string_view s) {
        u64(s.size());
        append(s.data(), s.size());
    }

    void f64_span(const double* data, std::size_t count) {
        u64(count);
        append(data, count * sizeof(double));
    }

    void f64_vector(const std::vector<double>& v) { f64_span(v.data(), v.size()); }

    template <typename V>
    void vec3(const V& v) {
        f64(v.x);
        f64(v.y);
        f64(v.z);
    }

  private:
    void append(const void* data, std::size_t len) {
        if (!in_chunk_) throw std::logic_error("StateWriter: field outside chunk");
        if (len == 0) return;
        // resize + memcpy rather than insert(end, p, p + len): GCC's
        // stringop-overflow analysis trips on the inlined insert path.
        const auto base = payload_.size();
        payload_.resize(base + len);
        std::memcpy(payload_.data() + base, data, len);
    }

    void emit(std::uint32_t tag, const std::vector<unsigned char>& payload) {
        const auto len = static_cast<std::uint64_t>(payload.size());
        write_raw(out_, tag);
        write_raw(out_, len);
        if (!payload.empty())
            out_.write(reinterpret_cast<const char*>(payload.data()),
                       static_cast<std::streamsize>(payload.size()));
        std::uint32_t crc = crc32(&tag, sizeof tag);
        crc = crc32(&len, sizeof len, crc);
        crc = crc32(payload.data(), payload.size(), crc);
        write_raw(out_, crc);
    }

    std::ostream& out_;
    std::vector<unsigned char> payload_;
    std::uint32_t tag_ = 0;
    bool in_chunk_ = false;
};

// ---------------------------------------------------------------------------
// StateReader (layer 2)
// ---------------------------------------------------------------------------

class StateReader {
  public:
    /// Reads and validates the ENTIRE stream up front: magic, version, and
    /// every chunk's length bound and CRC. Throws std::runtime_error on any
    /// mismatch, truncation, or corruption -- before the caller has loaded
    /// a single field, which is what makes rejection atomic.
    StateReader(std::istream& in, std::uint32_t magic, std::uint32_t version) {
        std::uint32_t stream_magic = 0, stream_version = 0;
        read_or_throw(in, stream_magic, "StateReader", "magic");
        if (stream_magic != magic)
            throw std::runtime_error("StateReader: bad magic (not a snapshot stream)");
        read_or_throw(in, stream_version, "StateReader", "version");
        if (stream_version != version)
            throw std::runtime_error("StateReader: unsupported snapshot version " +
                                     std::to_string(stream_version));

        for (;;) {
            Chunk chunk;
            std::uint64_t len = 0;
            read_or_throw(in, chunk.tag, "StateReader", "chunk tag");
            read_or_throw(in, len, "StateReader", "chunk length");
            if (len > kMaxChunkBytes)
                throw std::runtime_error("StateReader: corrupt chunk length");
            // Grow incrementally so a corrupt (but in-bound) length on a
            // truncated stream fails at the read, not as a giant allocation.
            while (chunk.payload.size() < len) {
                const auto step = static_cast<std::size_t>(
                    std::min<std::uint64_t>(len - chunk.payload.size(), 1u << 20));
                const auto base = chunk.payload.size();
                chunk.payload.resize(base + step);
                in.read(reinterpret_cast<char*>(chunk.payload.data() + base),
                        static_cast<std::streamsize>(step));
                if (!in)
                    throw std::runtime_error("StateReader: truncated chunk payload");
            }
            std::uint32_t stored_crc = 0;
            read_or_throw(in, stored_crc, "StateReader", "chunk crc");
            std::uint32_t crc = crc32(&chunk.tag, sizeof chunk.tag);
            crc = crc32(&len, sizeof len, crc);
            crc = crc32(chunk.payload.data(), chunk.payload.size(), crc);
            if (crc != stored_crc)
                throw std::runtime_error("StateReader: chunk crc mismatch (corrupt)");
            if (chunk.tag == kEndChunkTag) {
                if (!chunk.payload.empty())
                    throw std::runtime_error("StateReader: corrupt end chunk");
                break;
            }
            chunks_.push_back(std::move(chunk));
        }
    }

    /// Chunks must be consumed in stream order with the expected tags --
    /// the layout is positional, exactly mirroring the writer.
    void open_chunk(const char (&tag)[5]) {
        if (current_) throw std::logic_error("StateReader: chunk already open");
        if (next_ >= chunks_.size())
            throw std::runtime_error(std::string("StateReader: missing chunk ") + tag);
        if (chunks_[next_].tag != chunk_tag(tag))
            throw std::runtime_error(std::string("StateReader: unexpected chunk, wanted ") +
                                     tag);
        current_ = &chunks_[next_++];
        pos_ = 0;
    }

    /// A reader that leaves bytes behind decoded a different layout than
    /// the writer produced; fail loudly instead of silently resyncing.
    void close_chunk() {
        if (!current_) throw std::logic_error("StateReader: no open chunk");
        if (pos_ != current_->payload.size())
            throw std::runtime_error("StateReader: trailing bytes in chunk");
        current_ = nullptr;
    }

    /// Bytes left in the open chunk -- bounds element counts before resize.
    std::size_t remaining() const {
        if (!current_) return 0;
        return current_->payload.size() - pos_;
    }

    // -- field readers (mirror the writer exactly) --
    std::uint8_t u8() { return extract<std::uint8_t>(); }
    std::uint32_t u32() { return extract<std::uint32_t>(); }
    std::uint64_t u64() { return extract<std::uint64_t>(); }
    double f64() { return extract<double>(); }
    bool boolean() { return u8() != 0; }

    std::string str() {
        const auto len = count(1);
        std::string s(len, '\0');
        take(s.data(), len);
        return s;
    }

    std::vector<double> f64_vector() {
        const auto n = count(sizeof(double));
        std::vector<double> v(n);
        take(v.data(), n * sizeof(double));
        return v;
    }

    template <typename V>
    void vec3(V& v) {
        v.x = f64();
        v.y = f64();
        v.z = f64();
    }

    /// Read an element count and bound it against the bytes actually left
    /// in the chunk, so a corrupt count cannot drive a huge allocation.
    std::size_t count(std::size_t bytes_per_element) {
        const auto n = u64();
        if (bytes_per_element != 0 && n > remaining() / bytes_per_element)
            throw std::runtime_error("StateReader: element count exceeds chunk");
        return static_cast<std::size_t>(n);
    }

  private:
    struct Chunk {
        std::uint32_t tag = 0;
        std::vector<unsigned char> payload;
    };

    template <typename T>
    T extract() {
        T value;
        take(&value, sizeof value);
        return value;
    }

    void take(void* dst, std::size_t len) {
        if (!current_) throw std::logic_error("StateReader: field outside chunk");
        if (len > current_->payload.size() - pos_)
            throw std::runtime_error("StateReader: truncated field");
        std::memcpy(dst, current_->payload.data() + pos_, len);
        pos_ += len;
    }

    std::vector<Chunk> chunks_;
    std::size_t next_ = 0;
    Chunk* current_ = nullptr;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// std::mt19937_64 round-trip. The standard guarantees operator<< / >>
// reproduce the exact generator state (space-separated decimal words),
// which keeps the snapshot portable across library versions.
// ---------------------------------------------------------------------------

inline void save_state(StateWriter& w, const std::mt19937_64& engine) {
    std::ostringstream text;
    text << engine;
    w.str(text.str());
}

inline void load_state(StateReader& r, std::mt19937_64& engine) {
    std::istringstream text(r.str());
    text >> engine;
    if (!text) throw std::runtime_error("StateReader: corrupt rng state");
}

}  // namespace witrack::common
