// Plain-text table and CSV output for the benchmark harnesses. Every bench
// binary prints the rows/series of the corresponding paper figure with these
// helpers so the output format is uniform.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace witrack {

/// Column-aligned ASCII table; collects rows of strings and prints them with
/// a header rule, matching the "paper vs measured" layout in EXPERIMENTS.md.
class Table {
  public:
    explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

    Table& add_row(std::vector<std::string> cells) {
        rows_.push_back(std::move(cells));
        return *this;
    }

    /// Format a double with fixed precision; convenience for row building.
    static std::string num(double value, int precision = 2) {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << value;
        return os.str();
    }

    void print(std::ostream& out = std::cout) const {
        std::vector<std::size_t> widths(header_.size(), 0);
        auto grow = [&](const std::vector<std::string>& cells) {
            for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i)
                widths[i] = std::max(widths[i], cells[i].size());
        };
        grow(header_);
        for (const auto& row : rows_) grow(row);

        auto print_row = [&](const std::vector<std::string>& cells) {
            out << "  ";
            for (std::size_t i = 0; i < widths.size(); ++i) {
                const std::string& cell = i < cells.size() ? cells[i] : std::string{};
                out << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
            }
            out << '\n';
        };
        print_row(header_);
        std::size_t total = 2;
        for (auto w : widths) total += w + 2;
        out << "  " << std::string(total - 2, '-') << '\n';
        for (const auto& row : rows_) print_row(row);
    }

    /// Write the same content as CSV (no alignment padding).
    void write_csv(const std::string& path) const {
        std::ofstream out(path);
        if (!out) return;
        auto emit = [&](const std::vector<std::string>& cells) {
            for (std::size_t i = 0; i < cells.size(); ++i) {
                if (i) out << ',';
                out << cells[i];
            }
            out << '\n';
        };
        emit(header_);
        for (const auto& row : rows_) emit(row);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner for bench output.
inline void print_banner(const std::string& title, std::ostream& out = std::cout) {
    out << '\n' << std::string(72, '=') << '\n' << title << '\n'
        << std::string(72, '=') << '\n';
}

}  // namespace witrack
