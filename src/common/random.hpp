// Deterministic random number generation. Every stochastic component in the
// simulator draws from an explicitly seeded Rng so experiments reproduce
// bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <random>

namespace witrack {

/// Seedable random source wrapping a 64-bit Mersenne Twister.
///
/// Components that need independent streams derive them with fork(), which
/// produces a generator decorrelated from (but deterministically derived
/// from) its parent.
class Rng {
  public:
    explicit Rng(std::uint64_t seed = 0x5eed'ca11'f00d'beefULL) : engine_(seed) {}

    /// Uniform double in [lo, hi).
    double uniform(double lo = 0.0, double hi = 1.0) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Zero-mean Gaussian with the given standard deviation.
    double gaussian(double stddev = 1.0, double mean = 0.0) {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /// Rayleigh-distributed magnitude with the given scale parameter; used
    /// for Swerling-style radar-cross-section scintillation.
    double rayleigh(double sigma) {
        const double u = std::max(1e-12, uniform());
        return sigma * std::sqrt(-2.0 * std::log(u));
    }

    /// Exponential with the given mean.
    double exponential(double mean) {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /// Uniform integer in [lo, hi] inclusive.
    int uniform_int(int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(engine_);
    }

    /// Bernoulli trial.
    bool chance(double probability) { return uniform() < probability; }

    /// Derive an independent child generator. Mixes the label with splitmix64
    /// so fork(0) and fork(1) are decorrelated.
    Rng fork(std::uint64_t label) {
        std::uint64_t x = engine_() ^ (0x9e3779b97f4a7c15ULL + label);
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return Rng(x ^ (x >> 31));
    }

    std::mt19937_64& engine() { return engine_; }
    const std::mt19937_64& engine() const { return engine_; }

  private:
    std::mt19937_64 engine_;
};

}  // namespace witrack
