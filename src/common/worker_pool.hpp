// Fixed-size worker pool with a bounded job queue: the engine's parallel
// substrate for the per-RX TOF fan-out and concurrent app stages. Bounded
// on purpose -- a producer that outruns the workers blocks instead of
// growing an unbounded queue, so a realtime deployment degrades to
// backpressure rather than memory growth.
//
// parallel_for is the main entry point: the calling thread participates in
// the work (no idle handoff for small fan-outs), the call returns only
// after every index has finished, and the first exception thrown by the
// body is rethrown on the caller. Do not call parallel_for or submit from
// inside a pool job: jobs blocking on the pool's own queue can deadlock.
//
// Multi-client: one pool may be shared by any number of caller threads
// (the fleet EngineHost hands one pool to every session). Concurrent
// parallel_for calls interleave their jobs on the queue but are fully
// independent -- each call tracks its own indices, joins only its own
// helpers, and rethrows only its own body's exception, so one client's
// failure never poisons another (tests/test_fleet.cpp exercises this).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace witrack::common {

class WorkerPool {
  public:
    /// Spawn `threads` workers (>= 1). `queue_capacity` bounds the pending
    /// job queue; submit() blocks while it is full.
    explicit WorkerPool(std::size_t threads, std::size_t queue_capacity = 256)
        : queue_capacity_(queue_capacity == 0 ? 1 : queue_capacity) {
        if (threads == 0) threads = 1;
        threads_.reserve(threads);
        for (std::size_t i = 0; i < threads; ++i)
            threads_.emplace_back([this] { worker_loop(); });
    }

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /// Drains already-submitted jobs, then joins the workers.
    ~WorkerPool() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        not_empty_.notify_all();
        for (auto& thread : threads_) thread.join();
    }

    std::size_t size() const { return threads_.size(); }

    /// Enqueue one job; blocks while the queue is at capacity. Returns
    /// false (dropping the job) when the pool is shutting down.
    bool submit(std::function<void()> job) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            not_full_.wait(lock, [this] {
                return queue_.size() < queue_capacity_ || stopping_;
            });
            if (stopping_) return false;
            queue_.push_back(std::move(job));
        }
        not_empty_.notify_one();
        return true;
    }

    /// Run body(0) .. body(n-1) across the pool. The caller participates,
    /// the call blocks until every index completed, and the first exception
    /// thrown by the body is rethrown here. Index-to-thread assignment is
    /// dynamic, so the body must only touch index-disjoint state.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
        if (n == 0) return;
        if (n == 1 || threads_.empty()) {
            for (std::size_t i = 0; i < n; ++i) body(i);
            return;
        }

        struct SharedState {
            std::atomic<std::size_t> next{0};
            std::size_t n;
            const std::function<void(std::size_t)>* body;
            std::mutex mutex;
            std::condition_variable done;
            std::size_t helpers_exited = 0;
            std::exception_ptr error;
        } state;
        state.n = n;
        state.body = &body;

        const auto run_share = [&state] {
            for (;;) {
                const std::size_t i =
                    state.next.fetch_add(1, std::memory_order_relaxed);
                if (i >= state.n) break;
                try {
                    (*state.body)(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state.mutex);
                    if (!state.error) state.error = std::current_exception();
                }
            }
        };

        // The caller claims indices too, so helpers beyond n - 1 would only
        // contend on the counter.
        const std::size_t wanted = std::min(threads_.size(), n - 1);
        std::size_t helpers = 0;
        for (std::size_t h = 0; h < wanted; ++h) {
            const bool queued = submit([&state, run_share] {
                run_share();
                // Notify while holding the mutex: the caller's predicate
                // check runs under the same lock, so it cannot wake, return
                // and destroy the stack-allocated state while this signal
                // is still touching the condition variable.
                std::lock_guard<std::mutex> lock(state.mutex);
                ++state.helpers_exited;
                state.done.notify_one();
            });
            if (queued) ++helpers;
        }
        run_share();

        // Wait for every helper to *exit* (not merely for the index counter
        // to drain): helper jobs reference the stack-allocated state.
        std::unique_lock<std::mutex> lock(state.mutex);
        state.done.wait(lock,
                        [&state, helpers] { return state.helpers_exited == helpers; });
        if (state.error) std::rethrow_exception(state.error);
    }

  private:
    void worker_loop() {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
                if (queue_.empty()) return;  // stopping_ && drained
                job = std::move(queue_.front());
                queue_.pop_front();
            }
            not_full_.notify_one();
            job();
        }
    }

    std::size_t queue_capacity_;
    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    bool stopping_ = false;
};

}  // namespace witrack::common
