// Contiguous storage for one frame of baseband sweeps.
//
// The realtime path used to move every frame through
// std::vector<std::vector<std::vector<double>>> (sweep x rx x sample): tens
// of small heap blocks per frame, gathered into yet more copies before the
// range FFT. FrameBuffer replaces that with a single rx-major allocation --
// all sweeps of one antenna are contiguous, so the sweep averager consumes
// an antenna's data in one linear pass -- and std::span row views, so no
// stage needs to copy.
//
// Layout: data[rx * num_sweeps * samples + sweep * samples + i].
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/frame_quality.hpp"

namespace witrack {

class FrameBuffer {
  public:
    FrameBuffer() = default;

    FrameBuffer(std::size_t num_rx, std::size_t num_sweeps,
                std::size_t samples_per_sweep) {
        resize(num_rx, num_sweeps, samples_per_sweep);
    }

    /// Reshape and zero all samples; storage is reused when capacity
    /// suffices, so calling this once per frame on a long-lived buffer does
    /// not allocate at steady state. Producers that overwrite every sample
    /// anyway (e.g. the sweep capture loop) can skip the call when the
    /// shape is unchanged and save the fill.
    void resize(std::size_t num_rx, std::size_t num_sweeps,
                std::size_t samples_per_sweep) {
        num_rx_ = num_rx;
        num_sweeps_ = num_sweeps;
        samples_ = samples_per_sweep;
        data_.assign(num_rx * num_sweeps * samples_per_sweep, 0.0);
    }

    std::size_t num_rx() const { return num_rx_; }
    std::size_t num_sweeps() const { return num_sweeps_; }
    std::size_t samples_per_sweep() const { return samples_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    /// The frame's hardware-health side channel. Default-constructed
    /// (pristine) unless a fault source marked the frame; producers that
    /// reuse a buffer across frames are responsible for re-arming it
    /// (hw::FaultInjector::apply resets it every call).
    FrameQuality& quality() { return quality_; }
    const FrameQuality& quality() const { return quality_; }

    /// One baseband sweep of one antenna (samples_per_sweep doubles).
    std::span<double> sweep(std::size_t rx, std::size_t s) {
        check_rx(rx);
        check_sweep(s);
        return {data_.data() + offset(rx, s), samples_};
    }
    std::span<const double> sweep(std::size_t rx, std::size_t s) const {
        check_rx(rx);
        check_sweep(s);
        return {data_.data() + offset(rx, s), samples_};
    }

    /// All sweeps of one antenna, contiguous (num_sweeps * samples doubles).
    std::span<double> antenna(std::size_t rx) {
        check_rx(rx);
        return {data_.data() + offset(rx, 0), num_sweeps_ * samples_};
    }
    std::span<const double> antenna(std::size_t rx) const {
        check_rx(rx);
        return {data_.data() + offset(rx, 0), num_sweeps_ * samples_};
    }

    double& at(std::size_t rx, std::size_t s, std::size_t i) {
        check_rx(rx);
        check_sweep(s);
        if (i >= samples_) throw std::out_of_range("FrameBuffer: sample index");
        return data_[offset(rx, s) + i];
    }
    double at(std::size_t rx, std::size_t s, std::size_t i) const {
        return const_cast<FrameBuffer*>(this)->at(rx, s, i);
    }

    /// Convert from the legacy nested layout sweeps[sweep][rx][sample].
    /// Throws std::invalid_argument on ragged input.
    static FrameBuffer from_nested(
        const std::vector<std::vector<std::vector<double>>>& sweeps) {
        FrameBuffer frame;
        if (sweeps.empty()) return frame;
        const std::size_t num_rx = sweeps.front().size();
        const std::size_t samples =
            num_rx > 0 ? sweeps.front().front().size() : 0;
        frame.resize(num_rx, sweeps.size(), samples);
        for (std::size_t s = 0; s < sweeps.size(); ++s) {
            if (sweeps[s].size() != num_rx)
                throw std::invalid_argument("FrameBuffer: ragged antenna count");
            for (std::size_t rx = 0; rx < num_rx; ++rx) {
                const auto& src = sweeps[s][rx];
                if (src.size() != samples)
                    throw std::invalid_argument("FrameBuffer: ragged sweep length");
                auto dst = frame.sweep(rx, s);
                for (std::size_t i = 0; i < samples; ++i) dst[i] = src[i];
            }
        }
        return frame;
    }

    /// Convert back to the legacy nested layout sweeps[sweep][rx][sample].
    std::vector<std::vector<std::vector<double>>> to_nested() const {
        std::vector<std::vector<std::vector<double>>> out(num_sweeps_);
        for (std::size_t s = 0; s < num_sweeps_; ++s) {
            out[s].resize(num_rx_);
            for (std::size_t rx = 0; rx < num_rx_; ++rx) {
                const auto row = sweep(rx, s);
                out[s][rx].assign(row.begin(), row.end());
            }
        }
        return out;
    }

  private:
    std::size_t offset(std::size_t rx, std::size_t s) const {
        return (rx * num_sweeps_ + s) * samples_;
    }
    void check_rx(std::size_t rx) const {
        if (rx >= num_rx_) throw std::out_of_range("FrameBuffer: rx index");
    }
    void check_sweep(std::size_t s) const {
        if (s >= num_sweeps_) throw std::out_of_range("FrameBuffer: sweep index");
    }

    std::size_t num_rx_ = 0;
    std::size_t num_sweeps_ = 0;
    std::size_t samples_ = 0;
    std::vector<double> data_;
    FrameQuality quality_;
};

}  // namespace witrack
