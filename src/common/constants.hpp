// Physical constants and the FMCW radar parameter set used throughout
// WiTrack (paper Section 4.1 and Section 7).
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>

namespace witrack {

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Boltzmann constant [J/K], for the thermal noise floor kTB.
inline constexpr double kBoltzmann = 1.380649e-23;

/// Reference temperature for noise calculations [K].
inline constexpr double kReferenceTemperatureK = 290.0;

/// Parameters of the FMCW sweep and digitizer. Defaults follow the paper:
/// a 1.69 GHz sweep from 5.56 GHz to 7.25 GHz, 2.5 ms sweep period,
/// 0.75 mW transmit power, baseband sampled at 1 MS/s by the USRP LFRX-LF,
/// and 5 consecutive sweeps coherently averaged into one FFT frame.
struct FmcwParams {
    double start_frequency_hz = 5.56e9;
    double bandwidth_hz = 1.69e9;
    double sweep_duration_s = 2.5e-3;
    double sample_rate_hz = 1.0e6;
    double tx_power_w = 0.75e-3;
    std::size_t sweeps_per_frame = 5;

    /// Chirp slope [Hz/s]: the carrier advances this fast during a sweep.
    constexpr double slope() const { return bandwidth_hz / sweep_duration_s; }

    /// Number of baseband samples captured during one sweep.
    constexpr std::size_t samples_per_sweep() const {
        return static_cast<std::size_t>(sweep_duration_s * sample_rate_hz + 0.5);
    }

    /// Duration of one averaged FFT frame [s] (5 sweeps -> 12.5 ms).
    constexpr double frame_duration_s() const {
        return sweep_duration_s * static_cast<double>(sweeps_per_frame);
    }

    /// Frames produced per second (80 Hz with default parameters).
    constexpr double frame_rate_hz() const { return 1.0 / frame_duration_s(); }

    /// Centre frequency of the sweep [Hz].
    constexpr double center_frequency_hz() const {
        return start_frequency_hz + bandwidth_hz / 2.0;
    }

    /// Wavelength at the centre frequency [m].
    constexpr double center_wavelength_m() const {
        return kSpeedOfLight / center_frequency_hz();
    }

    /// FFT bin width [Hz]: one bin of an FFT taken over a full sweep.
    constexpr double fft_bin_hz() const { return 1.0 / sweep_duration_s; }

    /// Round-trip distance spanned by one FFT bin [m] (Eq. 4):
    /// distance = C * df / slope.
    constexpr double round_trip_bin_m() const {
        return kSpeedOfLight * fft_bin_hz() / slope();
    }

    /// One-way range resolution C/2B [m] (Eq. 3): 8.87 cm with defaults.
    constexpr double range_resolution_m() const {
        return kSpeedOfLight / (2.0 * bandwidth_hz);
    }

    /// Largest unambiguous round-trip distance [m], limited by the baseband
    /// Nyquist frequency: beat tones above fs/2 alias.
    constexpr double max_round_trip_m() const {
        return kSpeedOfLight * (sample_rate_hz / 2.0) / slope();
    }

    /// Beat frequency produced by a path with the given round-trip delay
    /// [Hz] (Eq. 1 rearranged: df = slope * TOF).
    constexpr double beat_frequency_hz(double round_trip_delay_s) const {
        return slope() * round_trip_delay_s;
    }

    /// Validate physical consistency; throws std::invalid_argument.
    void validate() const {
        if (bandwidth_hz <= 0 || sweep_duration_s <= 0 || sample_rate_hz <= 0)
            throw std::invalid_argument("FmcwParams: non-positive sweep parameter");
        if (tx_power_w <= 0)
            throw std::invalid_argument("FmcwParams: non-positive transmit power");
        if (sweeps_per_frame == 0)
            throw std::invalid_argument("FmcwParams: sweeps_per_frame must be >= 1");
        if (samples_per_sweep() < 16)
            throw std::invalid_argument("FmcwParams: sweep too short for the sample rate");
    }
};

}  // namespace witrack
