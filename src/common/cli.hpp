// Minimal command-line parsing for the bench harnesses. Every figure bench
// accepts the same vocabulary (--experiments, --seconds, --seed, --csv,
// --quick) so results are reproducible and scalable without recompiling.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace witrack {

/// Parses "--key value" and "--flag" style arguments.
class CliArgs {
  public:
    CliArgs(int argc, char** argv) {
        for (int i = 1; i < argc; ++i) {
            std::string token = argv[i];
            if (token.rfind("--", 0) != 0) continue;
            std::string key = token.substr(2);
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "1";  // bare flag
            }
        }
    }

    bool has(const std::string& key) const { return values_.count(key) > 0; }

    std::string get(const std::string& key, const std::string& fallback = "") const {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    int get_int(const std::string& key, int fallback) const {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : std::atoi(it->second.c_str());
    }

    double get_double(const std::string& key, double fallback) const {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : std::atof(it->second.c_str());
    }

    std::uint64_t get_seed(std::uint64_t fallback = 42) const {
        auto it = values_.find("seed");
        return it == values_.end() ? fallback
                                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

    /// True when the user asked for a fast, reduced-scale run.
    bool quick() const { return has("quick"); }

  private:
    std::map<std::string, std::string> values_;
};

}  // namespace witrack
