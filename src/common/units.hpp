// Unit conversions used across the RF and DSP layers.
#pragma once

#include <cmath>

namespace witrack {

/// Convert a power ratio to decibels.
inline double to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// Convert decibels to a power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Convert an amplitude (voltage) ratio to decibels.
inline double amplitude_to_db(double ratio) { return 20.0 * std::log10(ratio); }

/// Convert decibels to an amplitude (voltage) ratio.
inline double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

/// Convert watts to dBm.
inline double watt_to_dbm(double watt) { return 10.0 * std::log10(watt * 1e3); }

/// Convert dBm to watts.
inline double dbm_to_watt(double dbm) { return std::pow(10.0, dbm / 10.0) * 1e-3; }

/// Degrees to radians.
inline constexpr double deg_to_rad(double deg) { return deg * M_PI / 180.0; }

/// Radians to degrees.
inline constexpr double rad_to_deg(double rad) { return rad * 180.0 / M_PI; }

/// Wrap an angle to (-pi, pi].
inline double wrap_angle(double rad) {
    double wrapped = std::remainder(rad, 2.0 * M_PI);
    if (wrapped <= -M_PI) wrapped += 2.0 * M_PI;
    return wrapped;
}

}  // namespace witrack
