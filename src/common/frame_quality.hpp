// Per-frame hardware health, carried alongside the sweep samples.
//
// A production front end degrades long before it dies: an ADC clips, a
// PLL drifts, one RX cable goes bad. The pipeline can tolerate all of
// that -- the geometry solves with 3 of 4 antennas, the Kalman filter can
// coast a frame -- but only if each stage knows *which* lanes to distrust.
// FrameQuality is that side channel: per-RX flags set by whatever damaged
// the frame (hw::FaultInjector in test rigs, a driver in deployment) and
// a scalar health score the smoothing/confidence stages consume.
//
// The zero-fault representation is an empty `rx` vector: a pristine frame
// carries no per-lane state at all, every query returns the healthy
// answer, and the pipeline's fast path is untouched bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace witrack {

/// Health flags for one RX lane of one frame.
struct RxQuality {
    bool valid = true;       ///< lane produced usable sweeps (false = dead)
    bool saturated = false;  ///< ADC clipped: exclude from background training
    bool jitter = false;     ///< clock drift resampled this lane's sweeps
    bool burst = false;      ///< impulsive noise burst hit this lane
    std::uint32_t dropped_sweeps = 0;  ///< sweeps zeroed within the frame
    std::uint32_t short_sweeps = 0;    ///< sweeps truncated (tail lost)

    bool pristine() const {
        return valid && !saturated && !jitter && !burst &&
               dropped_sweeps == 0 && short_sweeps == 0;
    }
};

/// The quality plane of one frame. Default-constructed (rx empty) means
/// "no fault source touched this frame": all queries report healthy.
struct FrameQuality {
    std::vector<RxQuality> rx;  ///< per-lane flags; empty = pristine frame
    bool clock_drift = false;   ///< frame-wide timebase drift detected
    double health = 1.0;        ///< [0, 1]; 1.0 = pristine

    bool pristine() const {
        if (clock_drift || health != 1.0) return false;
        for (const auto& lane : rx)
            if (!lane.pristine()) return false;
        return true;
    }

    /// Lane queries tolerate an empty (pristine) plane and out-of-range
    /// indices so callers never branch on whether faults are wired up.
    bool lane_valid(std::size_t r) const {
        return r >= rx.size() || rx[r].valid;
    }
    bool lane_saturated(std::size_t r) const {
        return r < rx.size() && rx[r].saturated;
    }

    std::size_t valid_lanes(std::size_t num_rx) const {
        std::size_t n = 0;
        for (std::size_t r = 0; r < num_rx; ++r)
            if (lane_valid(r)) ++n;
        return n;
    }

    /// Re-arm the plane for a frame about to be damaged: one default
    /// (healthy) entry per lane, flags cleared.
    void reset(std::size_t num_rx) {
        rx.assign(num_rx, RxQuality{});
        clock_drift = false;
        health = 1.0;
    }

    /// Recompute the scalar health from the per-lane flags. Deterministic
    /// and purely a function of the flags, so an identical fault pattern
    /// always yields an identical score:
    ///   lane  = 0 for a dead lane, else
    ///           (1 - (dropped + short/2) / num_sweeps)
    ///           * 0.5 if saturated * 0.7 if burst * 0.85 if jittered
    ///   health = mean(lane) * (0.9 if clock_drift else 1)
    void recompute_health(std::size_t num_sweeps) {
        if (rx.empty()) {
            health = clock_drift ? 0.9 : 1.0;
            return;
        }
        double sum = 0.0;
        for (const auto& lane : rx) {
            if (!lane.valid) continue;
            double score = 1.0;
            if (num_sweeps > 0) {
                const double lost =
                    (static_cast<double>(lane.dropped_sweeps) +
                     0.5 * static_cast<double>(lane.short_sweeps)) /
                    static_cast<double>(num_sweeps);
                score -= lost;
                if (score < 0.0) score = 0.0;
            }
            if (lane.saturated) score *= 0.5;
            if (lane.burst) score *= 0.7;
            if (lane.jitter) score *= 0.85;
            sum += score;
        }
        health = sum / static_cast<double>(rx.size());
        if (clock_drift) health *= 0.9;
    }
};

/// Aggregated quality accounting over many frames. Defined engine-side
/// (like NetIngestStats) so the engine and host never depend on hw;
/// hw::FaultInjector::Counters mirrors the fault fields one to one, which
/// is what makes exact injector <-> pipeline accounting testable.
struct QualityStats {
    std::uint64_t frames = 0;           ///< frames observed
    std::uint64_t degraded_frames = 0;  ///< frames with health < 1
    std::uint64_t rx_dropouts = 0;      ///< lane-frames with a dead lane
    std::uint64_t saturated_rx = 0;     ///< lane-frames that clipped
    std::uint64_t dropped_sweeps = 0;   ///< sweeps zeroed in-frame
    std::uint64_t short_sweeps = 0;     ///< sweeps truncated in-frame
    std::uint64_t noise_bursts = 0;     ///< lane-frames hit by a burst
    std::uint64_t drift_frames = 0;     ///< frames with clock drift
    double health_sum = 0.0;            ///< sum of per-frame health
    double min_health = 1.0;            ///< worst frame seen

    void accumulate(const FrameQuality& q) {
        ++frames;
        if (q.health < 1.0) ++degraded_frames;
        for (const auto& lane : q.rx) {
            if (!lane.valid) ++rx_dropouts;
            if (lane.saturated) ++saturated_rx;
            dropped_sweeps += lane.dropped_sweeps;
            short_sweeps += lane.short_sweeps;
            if (lane.burst) ++noise_bursts;
        }
        if (q.clock_drift) ++drift_frames;
        health_sum += q.health;
        if (q.health < min_health) min_health = q.health;
    }

    QualityStats& operator+=(const QualityStats& other) {
        frames += other.frames;
        degraded_frames += other.degraded_frames;
        rx_dropouts += other.rx_dropouts;
        saturated_rx += other.saturated_rx;
        dropped_sweeps += other.dropped_sweeps;
        short_sweeps += other.short_sweeps;
        noise_bursts += other.noise_bursts;
        drift_frames += other.drift_frames;
        health_sum += other.health_sum;
        if (other.min_health < min_health) min_health = other.min_health;
        return *this;
    }

    double mean_health() const {
        return frames > 0 ? health_sum / static_cast<double>(frames) : 1.0;
    }
};

}  // namespace witrack
