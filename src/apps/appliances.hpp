// Pointing-controlled appliances (paper Section 6.1): "Based on the current
// 3D position of the user and the direction of her hand, WiTrack
// automatically identifies the desired appliance from a small set ... and
// issues a command via Insteon home drivers."
//
// ApplianceRegistry matches a pointing ray against registered appliance
// positions; InsteonDriver is a mock home-automation bus that records the
// commands it would send.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/pointing.hpp"
#include "geom/vec3.hpp"

namespace witrack::apps {

struct Appliance {
    std::string name;
    geom::Vec3 position;
    bool powered_on = false;
};

/// Mock Insteon bus: records commands instead of driving hardware.
class InsteonDriver {
  public:
    struct Command {
        std::string device;
        bool turn_on;
    };

    void send(const std::string& device, bool turn_on) {
        log_.push_back({device, turn_on});
    }
    const std::vector<Command>& log() const { return log_; }
    void clear() { log_.clear(); }

  private:
    std::vector<Command> log_;
};

class ApplianceRegistry {
  public:
    /// max_angle: widest acceptable angle between the pointing ray and the
    /// ray from the hand to the appliance. horizontal_only matches in
    /// azimuth alone -- practical when the antenna geometry (1 m vertical
    /// baseline vs 2 m horizontal) makes elevation much noisier than
    /// azimuth, as in the paper's T-array.
    explicit ApplianceRegistry(double max_angle_rad = 0.35,
                               bool horizontal_only = false)
        : max_angle_rad_(max_angle_rad), horizontal_only_(horizontal_only) {}

    void add(std::string name, const geom::Vec3& position) {
        appliances_.push_back({std::move(name), position, false});
    }

    std::size_t size() const { return appliances_.size(); }
    const std::vector<Appliance>& appliances() const { return appliances_; }

    /// The appliance best aligned with a pointing result, if any is within
    /// the angular threshold. Ties go to the smaller angle.
    std::optional<std::size_t> match(const core::PointingResult& pointing) const;

    /// Toggle the matched appliance through the driver; returns its name.
    std::optional<std::string> actuate(const core::PointingResult& pointing,
                                       InsteonDriver& driver);

  private:
    double max_angle_rad_;
    bool horizontal_only_ = false;
    std::vector<Appliance> appliances_;
};

}  // namespace witrack::apps
