// Streaming fall monitor: wraps the tracker's elevation stream with the
// fall detector and fires a callback on detected falls -- the elderly
// monitoring application of paper Section 1 / 6.2. Inside the streaming
// engine it runs as engine::FallMonitorStage, which feeds it every raw
// track point and publishes each alert as a FallEvent.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/serialize.hpp"
#include "core/fall.hpp"
#include "core/pipeline_steps.hpp"
#include "core/tracker.hpp"

namespace witrack::apps {

class FallMonitor {
  public:
    using FallCallback = std::function<void(const core::FallDetector::Analysis&)>;

    /// What this application consumes from the pipeline: the *raw*
    /// (unsmoothed) track -- falls live in the ~0.4 s transient that
    /// smoothing blurs away, and the smoothed track is never read. The
    /// engine plugin forwards this so a fall-only deployment skips the
    /// position Kalman entirely.
    static constexpr core::PipelineOutputs kRequiredInputs =
        core::PipelineOutputs::kRawPosition;

    /// `max_alerts` bounds the retained alert history: a monitor that runs
    /// for months keeps the most recent alerts and drops the oldest, so
    /// memory stays constant. 0 keeps everything (short offline episodes).
    explicit FallMonitor(core::FallDetectorConfig config = core::FallDetectorConfig{},
                         std::size_t max_alerts = 64)
        : detector_(config), max_alerts_(max_alerts) {}

    void on_fall(FallCallback callback) { callback_ = std::move(callback); }

    /// Feed each raw track point; invokes the callback on detection.
    void push(const core::TrackPoint& point) {
        const auto analysis = detector_.push(point);
        if (analysis) {
            if (max_alerts_ > 0 && alerts_.size() >= max_alerts_)
                alerts_.erase(alerts_.begin());  // ring: drop the oldest
            alerts_.push_back(*analysis);
            ++total_alerts_;
            if (callback_) callback_(*analysis);
        }
    }

    /// The most recent alerts (bounded by max_alerts).
    const std::vector<core::FallDetector::Analysis>& alerts() const { return alerts_; }

    /// Lifetime alert count (keeps counting after the ring wraps).
    std::size_t total_alerts() const { return total_alerts_; }

    std::size_t max_alerts() const { return max_alerts_; }

    /// Serialize the detector state, the alert ring, and the lifetime
    /// count; the callback is wiring, not state, and stays with the target.
    void save_state(common::StateWriter& writer) const {
        detector_.save_state(writer);
        writer.u64(total_alerts_);
        writer.u64(alerts_.size());
        for (const auto& alert : alerts_) core::save_state(writer, alert);
    }

    void load_state(common::StateReader& reader) {
        detector_.load_state(reader);
        total_alerts_ = static_cast<std::size_t>(reader.u64());
        alerts_.resize(reader.count(sizeof(double)));
        for (auto& alert : alerts_) core::load_state(reader, alert);
    }

  private:
    core::FallDetector detector_;
    FallCallback callback_;
    std::size_t max_alerts_;
    std::size_t total_alerts_ = 0;
    std::vector<core::FallDetector::Analysis> alerts_;
};

}  // namespace witrack::apps
