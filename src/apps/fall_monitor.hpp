// Streaming fall monitor: wraps the tracker's elevation stream with the
// fall detector and fires a callback on detected falls -- the elderly
// monitoring application of paper Section 1 / 6.2.
#pragma once

#include <functional>
#include <vector>

#include "core/fall.hpp"
#include "core/tracker.hpp"

namespace witrack::apps {

class FallMonitor {
  public:
    using FallCallback = std::function<void(const core::FallDetector::Analysis&)>;

    explicit FallMonitor(core::FallDetectorConfig config = core::FallDetectorConfig{})
        : detector_(config) {}

    void on_fall(FallCallback callback) { callback_ = std::move(callback); }

    /// Feed each smoothed track point; invokes the callback on detection.
    void push(const core::TrackPoint& point) {
        const auto analysis = detector_.push(point);
        if (analysis) {
            alerts_.push_back(*analysis);
            if (callback_) callback_(*analysis);
        }
    }

    const std::vector<core::FallDetector::Analysis>& alerts() const { return alerts_; }

  private:
    core::FallDetector detector_;
    FallCallback callback_;
    std::vector<core::FallDetector::Analysis> alerts_;
};

}  // namespace witrack::apps
