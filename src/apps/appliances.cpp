#include "apps/appliances.hpp"

namespace witrack::apps {

std::optional<std::size_t> ApplianceRegistry::match(
    const core::PointingResult& pointing) const {
    std::optional<std::size_t> best;
    double best_angle = max_angle_rad_;
    for (std::size_t i = 0; i < appliances_.size(); ++i) {
        geom::Vec3 to_appliance = appliances_[i].position - pointing.hand_end;
        geom::Vec3 ray = pointing.direction;
        if (horizontal_only_) {
            to_appliance.z = 0.0;
            ray.z = 0.0;
        }
        if (to_appliance.norm() < 0.3) continue;  // standing on top of it
        const double angle = geom::angle_between(to_appliance, ray);
        if (angle <= best_angle) {
            best_angle = angle;
            best = i;
        }
    }
    return best;
}

std::optional<std::string> ApplianceRegistry::actuate(
    const core::PointingResult& pointing, InsteonDriver& driver) {
    const auto index = match(pointing);
    if (!index) return std::nullopt;
    Appliance& appliance = appliances_[*index];
    appliance.powered_on = !appliance.powered_on;
    driver.send(appliance.name, appliance.powered_on);
    return appliance.name;
}

}  // namespace witrack::apps
