// Directional antenna model. The prototype uses WA5VJB log-periodic
// directional antennas (paper Section 7); we model the pattern as a Gaussian
// main lobe with a finite front-to-back ratio, which captures what matters
// for WiTrack: reflectors outside the beam contribute little energy, and
// intersection ambiguities behind the array are infeasible (Section 5).
#pragma once

#include <cmath>

#include "common/units.hpp"
#include "geom/vec3.hpp"

namespace witrack::rf {

struct AntennaPattern {
    double peak_gain_dbi = 10.0;
    double half_power_beamwidth_deg = 60.0;
    double front_back_ratio_db = 25.0;

    /// Linear power gain at `off_axis_rad` from boresight. Gaussian main
    /// lobe normalized so gain(HPBW/2) = peak/2, floored at the back-lobe
    /// level.
    double gain(double off_axis_rad) const {
        const double peak = from_db(peak_gain_dbi);
        const double half = deg_to_rad(half_power_beamwidth_deg) / 2.0;
        const double alpha = std::log(2.0) / (half * half);
        const double main_lobe = peak * std::exp(-alpha * off_axis_rad * off_axis_rad);
        const double back_lobe = peak * from_db(-front_back_ratio_db);
        return std::max(main_lobe, back_lobe);
    }
};

/// An antenna: a position, a facing direction, and a pattern.
struct Antenna {
    geom::Vec3 position;
    geom::Vec3 boresight{0.0, 1.0, 0.0};
    AntennaPattern pattern;

    /// Linear power gain toward a point in space.
    double gain_toward(const geom::Vec3& point) const {
        const geom::Vec3 d = point - position;
        if (d.norm() < 1e-9) return from_db(pattern.peak_gain_dbi);
        return pattern.gain(geom::angle_between(d, boresight));
    }
};

}  // namespace witrack::rf
