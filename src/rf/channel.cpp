#include "rf/channel.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace witrack::rf {

namespace {
constexpr double kFourPi = 4.0 * M_PI;
}

Channel::Channel(ChannelConfig config, Antenna tx, std::vector<Antenna> rx, Scene scene)
    : config_(std::move(config)),
      tx_(tx),
      rx_(std::move(rx)),
      scene_(std::move(scene)),
      lambda_(config_.fmcw.center_wavelength_m()) {
    config_.fmcw.validate();
}

double Channel::traversal_gain(const geom::Vec3& a, const geom::Vec3& b) const {
    double gain = 1.0;
    for (const auto& wall : scene_.walls)
        if (wall.segment_crosses(a, b)) gain *= from_db(-wall.material().traversal_loss_db);
    return gain;
}

double Channel::bistatic_amplitude(double d_tx, double d_rx, double rcs, double g_tx,
                                   double g_rx) const {
    d_tx = std::max(d_tx, 0.1);
    d_rx = std::max(d_rx, 0.1);
    const double power = config_.fmcw.tx_power_w * g_tx * g_rx * lambda_ * lambda_ * rcs /
                         (kFourPi * kFourPi * kFourPi * d_tx * d_tx * d_rx * d_rx);
    return std::sqrt(power);
}

PathList Channel::static_paths(std::size_t rx_index) const {
    const Antenna& rx = rx_.at(rx_index);
    PathList paths;

    // Direct Tx->Rx leakage: always present, short delay, strong.
    {
        PropagationPath leak;
        leak.round_trip_m = std::max(tx_.position.distance_to(rx.position), 0.05);
        leak.amplitude =
            std::sqrt(config_.fmcw.tx_power_w * from_db(config_.tx_rx_coupling_db));
        leak.kind = PathKind::kTxLeakage;
        paths.push_back(leak);
    }

    // Wall speculars (the flash effect): one image per panel that offers a
    // geometric bounce Tx -> wall -> Rx.
    if (config_.enable_wall_speculars) {
        for (const auto& wall : scene_.walls) {
            const auto bounce = wall.specular_point(tx_.position, rx.position);
            if (!bounce) continue;
            const double d = tx_.position.distance_to(*bounce) +
                             bounce->distance_to(rx.position);
            const double g_tx = tx_.gain_toward(*bounce);
            const double g_rx = rx.gain_toward(*bounce);
            // Friis one-bounce with the wall's reflection loss.
            const double power = config_.fmcw.tx_power_w * g_tx * g_rx * lambda_ *
                                 lambda_ / (kFourPi * kFourPi * d * d) *
                                 from_db(-wall.material().reflection_loss_db);
            PropagationPath p;
            p.round_trip_m = d;
            p.amplitude = std::sqrt(power);
            p.kind = PathKind::kStaticClutter;
            paths.push_back(p);
        }
    }

    // Furniture / point clutter via the radar equation, attenuated by any
    // wall each leg crosses.
    for (const auto& reflector : scene_.clutter) {
        const double d_tx = tx_.position.distance_to(reflector.position);
        const double d_rx = rx.position.distance_to(reflector.position);
        double amp = bistatic_amplitude(d_tx, d_rx, reflector.rcs_m2,
                                        tx_.gain_toward(reflector.position),
                                        rx.gain_toward(reflector.position));
        amp *= std::sqrt(traversal_gain(tx_.position, reflector.position) *
                         traversal_gain(reflector.position, rx.position));
        PropagationPath p;
        p.round_trip_m = d_tx + d_rx;
        p.amplitude = amp;
        p.phase_rad = M_PI;  // metallic-ish reflection inversion
        p.kind = PathKind::kStaticClutter;
        paths.push_back(p);
    }

    return paths;
}

void Channel::add_body_paths_for_scatterer(std::size_t rx_index, const BodyScatterer& s,
                                           PathList& out) const {
    const Antenna& rx = rx_.at(rx_index);
    const double d_tx = tx_.position.distance_to(s.position);
    const double d_rx = rx.position.distance_to(s.position);
    const double leg_tx_gain = traversal_gain(tx_.position, s.position);

    // Direct body echo.
    {
        double amp = bistatic_amplitude(d_tx, d_rx, s.rcs_m2,
                                        tx_.gain_toward(s.position),
                                        rx.gain_toward(s.position));
        amp *= std::sqrt(leg_tx_gain * traversal_gain(s.position, rx.position));
        PropagationPath p;
        p.round_trip_m = d_tx + d_rx;
        p.amplitude = amp;
        p.phase_rad = s.phase_rad;
        p.kind = PathKind::kBodyDirect;
        out.push_back(p);
    }

    if (!config_.enable_dynamic_multipath) return;

    // First-order bounces involving one wall, via the image method:
    //   Tx -> body -> wall -> Rx   (mirror the receiver)
    //   Tx -> wall -> body -> Rx   (mirror the transmitter)
    for (const auto& wall : scene_.walls) {
        const double reflect_amp = db_to_amplitude(-wall.material().reflection_loss_db);

        if (wall.specular_point(s.position, rx.position)) {
            const geom::Vec3 rx_image = wall.mirror(rx.position);
            const double d_bounce = s.position.distance_to(rx_image);
            double amp = bistatic_amplitude(d_tx, d_bounce, s.rcs_m2,
                                            tx_.gain_toward(s.position),
                                            rx.gain_toward(wall.mirror(s.position)));
            amp *= reflect_amp * std::sqrt(leg_tx_gain);
            PropagationPath p;
            p.round_trip_m = d_tx + d_bounce;
            p.amplitude = amp;
            p.phase_rad = s.phase_rad + M_PI;
            p.kind = PathKind::kBodyMultipath;
            out.push_back(p);
        }

        if (wall.specular_point(tx_.position, s.position)) {
            const geom::Vec3 tx_image = wall.mirror(tx_.position);
            const double d_bounce = s.position.distance_to(tx_image);
            double amp = bistatic_amplitude(d_bounce, d_rx, s.rcs_m2,
                                            tx_.gain_toward(wall.mirror(s.position)),
                                            rx.gain_toward(s.position));
            amp *= reflect_amp *
                   std::sqrt(traversal_gain(s.position, rx.position));
            PropagationPath p;
            p.round_trip_m = d_bounce + d_rx;
            p.amplitude = amp;
            p.phase_rad = s.phase_rad + M_PI;
            p.kind = PathKind::kBodyMultipath;
            out.push_back(p);
        }
    }
}

PathList Channel::body_paths(std::size_t rx_index,
                             std::span<const BodyScatterer> body) const {
    PathList paths;
    paths.reserve(body.size() * 3);
    for (const auto& s : body) add_body_paths_for_scatterer(rx_index, s, paths);

    // Prune negligible contributions relative to the strongest body path.
    double peak = 0.0;
    for (const auto& p : paths) peak = std::max(peak, p.amplitude);
    const double floor = peak * config_.prune_relative_amplitude;
    paths.erase(std::remove_if(paths.begin(), paths.end(),
                               [floor](const PropagationPath& p) {
                                   return p.amplitude < floor;
                               }),
                paths.end());
    return paths;
}

}  // namespace witrack::rf
