// Radar cross-sections of body parts at ~6 GHz with Swerling-style
// scintillation: the echo power of an extended target fluctuates frame to
// frame as its sub-scatterers move in and out of phase.
//
// The torso and legs behave like a dominant scatterer plus small ones
// (Swerling III: chi-squared with 4 DoF -- milder fading), while small
// parts (arm, hand, head) are collections of comparable scatterers
// (Swerling I: exponential power). The pointing detector (paper
// Section 6.1) relies on the arm's reflection surface being much smaller
// than the whole body's.
#pragma once

#include "common/random.hpp"

namespace witrack::rf {

enum class Fluctuation {
    kSwerlingI,    ///< exponential power (many comparable scatterers)
    kSwerlingIII,  ///< chi-squared 4 DoF (one dominant scatterer)
    kSteady,       ///< no fluctuation (calibration targets)
};

struct RcsModel {
    double mean_rcs_m2 = 1.0;
    Fluctuation fluctuation = Fluctuation::kSwerlingI;

    /// Draw a fluctuated RCS for one coherent processing interval.
    double sample(Rng& rng) const {
        switch (fluctuation) {
            case Fluctuation::kSwerlingI:
                return rng.exponential(mean_rcs_m2);
            case Fluctuation::kSwerlingIII:
                // Sum of two exponentials with half the mean: chi^2_4.
                return rng.exponential(mean_rcs_m2 / 2.0) +
                       rng.exponential(mean_rcs_m2 / 2.0);
            case Fluctuation::kSteady:
                return mean_rcs_m2;
        }
        return mean_rcs_m2;
    }
};

namespace rcs {

inline RcsModel torso() { return {0.80, Fluctuation::kSwerlingIII}; }
inline RcsModel head() { return {0.10, Fluctuation::kSwerlingI}; }
inline RcsModel leg() { return {0.12, Fluctuation::kSwerlingIII}; }
inline RcsModel arm() { return {0.05, Fluctuation::kSwerlingI}; }
inline RcsModel hand() { return {0.04, Fluctuation::kSwerlingI}; }

/// Furniture-scale static reflector.
inline RcsModel furniture() { return {1.5, Fluctuation::kSteady}; }

/// Calibration sphere (tests): steady echo.
inline RcsModel reference(double rcs) { return {rcs, Fluctuation::kSteady}; }

}  // namespace rcs

}  // namespace witrack::rf
