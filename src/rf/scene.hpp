// Scene description consumed by the channel model: walls (finite panels)
// and static point clutter (furniture, cabinets, radiators). The human is
// not part of the scene; body scatterers are supplied per sweep by the
// motion simulator.
#pragma once

#include <vector>

#include "geom/vec3.hpp"
#include "rf/wall.hpp"

namespace witrack::rf {

struct StaticReflector {
    geom::Vec3 position;
    double rcs_m2 = 1.0;
};

/// One scattering centre on the tracked person, with an RCS already
/// fluctuated for the current coherent interval and a scattering phase that
/// evolves slowly as the body articulates.
struct BodyScatterer {
    geom::Vec3 position;
    double rcs_m2 = 0.5;
    double phase_rad = 0.0;
};

struct Scene {
    std::vector<Wall> walls;
    std::vector<StaticReflector> clutter;
};

}  // namespace witrack::rf
