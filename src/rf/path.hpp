// Propagation path description handed from the channel model to the FMCW
// front end. Each path contributes one beat tone to the dechirped baseband
// signal, at frequency slope * (round_trip_m / C) (paper Eq. 1).
#pragma once

#include <vector>

namespace witrack::rf {

enum class PathKind {
    kTxLeakage,      ///< direct Tx->Rx coupling (strong, very short delay)
    kStaticClutter,  ///< walls / furniture; constant over time
    kBodyDirect,     ///< Tx -> body -> Rx, the reflection WiTrack wants
    kBodyMultipath,  ///< Tx -> body -> wall -> Rx (dynamic multipath)
};

struct PropagationPath {
    double round_trip_m = 0.0;  ///< total geometric path length [m]
    double amplitude = 0.0;     ///< received amplitude at the antenna port
    double phase_rad = 0.0;     ///< reflection/scattering phase offset
    PathKind kind = PathKind::kStaticClutter;
};

using PathList = std::vector<PropagationPath>;

}  // namespace witrack::rf
