// Receiver noise model. The per-sample baseband noise standard deviation
// follows kT * F * fs/2 where F is the *system* noise figure. F defaults
// high (40 dB) because it lumps together everything a behavioural model
// does not track explicitly: mixer conversion loss, synthesizer phase
// noise, ADC noise and residual clutter. The value is calibrated so that a
// person at 5 m line-of-sight yields a post-FFT SNR around 30 dB, matching
// the qualitative SNR regime of the paper's prototype.
#pragma once

#include <cmath>

#include "common/constants.hpp"
#include "common/random.hpp"
#include "common/units.hpp"

namespace witrack::rf {

struct NoiseModel {
    double system_noise_figure_db = 34.0;

    /// Standard deviation of additive white Gaussian noise per baseband
    /// sample at the given sample rate.
    double sample_stddev(double sample_rate_hz) const {
        const double n0 = kBoltzmann * kReferenceTemperatureK *
                          from_db(system_noise_figure_db);
        return std::sqrt(n0 * sample_rate_hz / 2.0);
    }

    double sample(Rng& rng, double sample_rate_hz) const {
        return rng.gaussian(sample_stddev(sample_rate_hz));
    }
};

}  // namespace witrack::rf
