// Building materials for walls and their RF behaviour around 6 GHz:
// one-way traversal attenuation (for through-wall operation, paper
// Section 9.1: "6-inch hollow walls supported by steel frames with sheet
// rock on top") and specular reflection loss (the wall "flash" and the
// dynamic multipath bounces of Section 4.3).
#pragma once

#include <string>

namespace witrack::rf {

struct Material {
    std::string name;
    double traversal_loss_db;   ///< one-way attenuation through the wall
    double reflection_loss_db;  ///< loss on a specular bounce off the wall
};

namespace materials {

/// Standard office hollow wall: sheetrock over steel studs (the paper's
/// test wall). Moderate traversal loss, fairly strong reflection.
inline Material sheetrock() { return {"sheetrock", 5.0, 5.0}; }

/// Poured concrete: nearly opaque at 6 GHz.
inline Material concrete() { return {"concrete", 18.0, 3.0}; }

/// Interior glass partition.
inline Material glass() { return {"glass", 3.0, 9.0}; }

/// Wooden door / panel.
inline Material wood() { return {"wood", 4.5, 8.0}; }

}  // namespace materials

}  // namespace witrack::rf
