// Finite rectangular wall panels. Walls play three roles in the channel:
// they attenuate paths that cross them (through-wall tracking), they produce
// strong static specular reflections (the "flash effect", Section 4.2), and
// they create dynamic multipath by reflecting body echoes (Section 4.3).
#pragma once

#include <cmath>
#include <optional>

#include "geom/vec3.hpp"
#include "rf/material.hpp"

namespace witrack::rf {

class Wall {
  public:
    /// `center` is the panel centre; `normal` its unit normal; `u_axis` an
    /// in-plane unit vector; the panel spans +/-half_u along u_axis and
    /// +/-half_v along normal x u_axis.
    Wall(const geom::Vec3& center, const geom::Vec3& normal, const geom::Vec3& u_axis,
         double half_u, double half_v, Material material)
        : center_(center),
          normal_(normal.normalized()),
          u_(u_axis.normalized()),
          v_(normal_.cross(u_).normalized()),
          half_u_(half_u),
          half_v_(half_v),
          material_(std::move(material)) {}

    const Material& material() const { return material_; }
    const geom::Vec3& center() const { return center_; }
    const geom::Vec3& normal() const { return normal_; }

    /// Signed distance of a point from the wall plane.
    double signed_distance(const geom::Vec3& p) const {
        return (p - center_).dot(normal_);
    }

    /// True when the open segment a->b passes through the panel.
    bool segment_crosses(const geom::Vec3& a, const geom::Vec3& b) const {
        const double da = signed_distance(a);
        const double db = signed_distance(b);
        if (da * db >= 0.0) return false;  // same side (or touching)
        const double t = da / (da - db);
        const geom::Vec3 hit = geom::lerp(a, b, t);
        return within_panel(hit);
    }

    /// Mirror image of a point across the wall plane (for first-order
    /// specular multipath via the image method).
    geom::Vec3 mirror(const geom::Vec3& p) const {
        return p - normal_ * (2.0 * signed_distance(p));
    }

    /// Specular reflection point for a bounce from `a` to `b` off this wall,
    /// if it lands on the finite panel and both endpoints are on the same
    /// side (a real bounce, not a traversal).
    std::optional<geom::Vec3> specular_point(const geom::Vec3& a, const geom::Vec3& b) const {
        const double da = signed_distance(a);
        const double db = signed_distance(b);
        if (da * db <= 0.0) return std::nullopt;  // opposite sides: no bounce
        const geom::Vec3 b_img = mirror(b);
        const double da2 = signed_distance(a);
        const double db2 = signed_distance(b_img);
        if (da2 == db2) return std::nullopt;
        const double t = da2 / (da2 - db2);
        if (t < 0.0 || t > 1.0) return std::nullopt;
        const geom::Vec3 hit = geom::lerp(a, b_img, t);
        if (!within_panel(hit)) return std::nullopt;
        return hit;
    }

    bool within_panel(const geom::Vec3& p) const {
        const geom::Vec3 d = p - center_;
        return std::abs(d.dot(u_)) <= half_u_ && std::abs(d.dot(v_)) <= half_v_;
    }

  private:
    geom::Vec3 center_;
    geom::Vec3 normal_;
    geom::Vec3 u_;
    geom::Vec3 v_;
    double half_u_;
    double half_v_;
    Material material_;
};

}  // namespace witrack::rf
