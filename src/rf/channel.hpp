// Image-method propagation channel. For each receive antenna it enumerates:
//
//  * the Tx->Rx leakage path,
//  * static clutter paths (wall speculars via mirror images + furniture
//    point reflectors) -- the "flash effect" of Section 4.2,
//  * direct body paths Tx -> scatterer -> Rx,
//  * first-order dynamic multipath Tx -> body -> wall -> Rx and
//    Tx -> wall -> body -> Rx (Section 4.3),
//
// with radar-equation amplitudes, directional antenna gains and per-wall
// traversal attenuation on every leg that crosses a wall (through-wall
// operation).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/constants.hpp"
#include "rf/antenna.hpp"
#include "rf/path.hpp"
#include "rf/scene.hpp"

namespace witrack::rf {

struct ChannelConfig {
    FmcwParams fmcw;
    double tx_rx_coupling_db = -50.0;  ///< leakage between the co-located antennas
    /// Paths whose amplitude falls below peak-amplitude * this are pruned.
    double prune_relative_amplitude = 1e-7;
    bool enable_dynamic_multipath = true;
    bool enable_wall_speculars = true;
};

class Channel {
  public:
    Channel(ChannelConfig config, Antenna tx, std::vector<Antenna> rx, Scene scene);

    std::size_t num_rx() const { return rx_.size(); }
    const Antenna& tx_antenna() const { return tx_; }
    const Antenna& rx_antenna(std::size_t i) const { return rx_.at(i); }
    const Scene& scene() const { return scene_; }

    /// Time-invariant paths for one receive antenna (computed once and
    /// cached by the front end).
    PathList static_paths(std::size_t rx_index) const;

    /// Paths involving the body for the current scatterer constellation.
    PathList body_paths(std::size_t rx_index,
                        std::span<const BodyScatterer> body) const;

    /// One-way power attenuation (linear, <= 1) from walls crossed by the
    /// open segment a->b.
    double traversal_gain(const geom::Vec3& a, const geom::Vec3& b) const;

    /// Bistatic radar-equation amplitude for a scatterer of cross-section
    /// `rcs` seen from tx distance d_tx and rx distance d_rx with the given
    /// antenna power gains (linear).
    double bistatic_amplitude(double d_tx, double d_rx, double rcs, double g_tx,
                              double g_rx) const;

  private:
    void add_body_paths_for_scatterer(std::size_t rx_index, const BodyScatterer& s,
                                      PathList& out) const;

    ChannelConfig config_;
    Antenna tx_;
    std::vector<Antenna> rx_;
    Scene scene_;
    double lambda_;  // carrier wavelength at sweep centre
};

}  // namespace witrack::rf
