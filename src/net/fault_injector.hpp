// Deterministic network misbehavior for the loopback rigs: given the exact
// datagram stream a sender would emit, produce the stream a bad link would
// deliver -- dropped, duplicated, corrupted, reordered -- from a seeded RNG,
// so every degradation test and bench run is reproducible bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "net/frame_protocol.hpp"

namespace witrack::net {

struct FaultConfig {
    double drop_rate = 0.0;       ///< P(datagram never arrives)
    double duplicate_rate = 0.0;  ///< P(datagram arrives twice)
    double corrupt_rate = 0.0;    ///< P(one payload byte flipped)
    double reorder_rate = 0.0;    ///< P(datagram swaps with its successor)
    std::uint64_t seed = 1;
    /// Keep the final datagram intact and last. With the sender's
    /// end-of-stream marker last, it pins the stream bound, which makes
    /// gap accounting exact: gaps == frames sent - frames delivered.
    bool protect_last = true;
};

class FaultInjector {
  public:
    /// Datagrams damaged so far, cumulative across apply() calls. Each
    /// counter matches a NetIngestStats consequence exactly (every
    /// corrupted datagram is one crc_errors, etc.).
    struct Counters {
        std::uint64_t dropped = 0;
        std::uint64_t duplicated = 0;
        std::uint64_t corrupted = 0;
        std::uint64_t reordered = 0;
    };

    explicit FaultInjector(FaultConfig config);

    /// Run the stream through the configured faults, in causal order:
    /// drop, duplicate, corrupt, then pairwise reorder.
    std::vector<Datagram> apply(std::vector<Datagram> stream);

    const Counters& counters() const { return counters_; }

  private:
    FaultConfig config_;
    Counters counters_;
    std::uint64_t rng_state_;

    bool roll(double rate);
    std::uint64_t next_u64();
};

}  // namespace witrack::net
