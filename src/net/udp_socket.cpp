#include "net/udp_socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace witrack::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

}  // namespace

UdpSocket::UdpSocket(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) throw_errno("UdpSocket: socket");
    const sockaddr_in addr = loopback_addr(port);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw_errno("UdpSocket: bind 127.0.0.1:" + std::to_string(port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw_errno("UdpSocket: getsockname");
    }
    port_ = ntohs(bound.sin_port);
}

UdpSocket::~UdpSocket() {
    if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        port_ = std::exchange(other.port_, 0);
    }
    return *this;
}

void UdpSocket::send_to(std::uint16_t port, std::span<const std::uint8_t> bytes) {
    const sockaddr_in addr = loopback_addr(port);
    const ssize_t sent =
        ::sendto(fd_, bytes.data(), bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (sent < 0) throw_errno("UdpSocket: sendto 127.0.0.1:" + std::to_string(port));
    if (static_cast<std::size_t>(sent) != bytes.size())
        throw std::runtime_error("UdpSocket: short datagram send");
}

bool UdpSocket::receive(std::vector<std::uint8_t>& datagram) {
    // One recv per datagram; 64 KiB covers the largest UDP payload, so no
    // protocol-legal datagram is ever truncated by the read itself.
    datagram.resize(65536);
    const ssize_t got =
        ::recvfrom(fd_, datagram.data(), datagram.size(), MSG_DONTWAIT,
                   nullptr, nullptr);
    if (got < 0) {
        datagram.clear();
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
            return false;
        throw_errno("UdpSocket: recvfrom");
    }
    datagram.resize(static_cast<std::size_t>(got));
    return true;
}

bool UdpSocket::wait(int timeout_ms) {
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
        const int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready < 0) {
            if (errno == EINTR) continue;
            throw_errno("UdpSocket: poll");
        }
        return ready > 0 && (pfd.revents & POLLIN) != 0;
    }
}

}  // namespace witrack::net
