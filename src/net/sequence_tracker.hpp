// Per-sender sequence tracking and frame reassembly. One SequenceTracker
// watches one sender's datagram stream (already CRC-validated by the
// caller), rebuilds frame bodies from fragments, and accounts every way a
// lossy link can misbehave: gaps (frame seqs that never completed),
// reorders (datagrams arriving out of order), duplicate fragments, and
// late fragments of frames already delivered or written off.
//
// Delivery is strictly in-order: pop() hands out frame seqs ascending, and
// a missing frame holds delivery back only until the reassembly window
// fills (window_frames pending seqs), at which point the tracker writes
// the missing frames off as gaps and moves on -- a tracker fed by a live
// radio must bound both its memory and its latency. flush() (end of
// stream, or the source going idle) releases everything still pending the
// same way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "engine/frame_source.hpp"
#include "net/frame_protocol.hpp"

namespace witrack::net {

struct SequenceTrackerConfig {
    /// Pending (not yet deliverable) frame seqs held before the oldest
    /// missing frame is written off as a gap.
    std::size_t window_frames = 8;
};

class SequenceTracker {
  public:
    explicit SequenceTracker(SequenceTrackerConfig config = {});

    /// Feed one decoded datagram (header + payload from decode_datagram).
    /// End-of-stream markers update the stream bound instead of carrying a
    /// fragment. Counters are updated; completed frames become poppable.
    void offer(const FrameHeader& header, std::span<const std::uint8_t> payload);

    /// Deliver the next in-order completed frame body. False when nothing
    /// is deliverable yet (a gap may still fill in).
    bool pop(std::uint64_t& frame_seq, std::vector<std::uint8_t>& body);

    /// Release every completed pending frame in order, writing incomplete
    /// and missing seqs off as gaps up to the stream bound (the
    /// end-of-stream seq when one arrived, one past the highest seq seen
    /// otherwise). Idempotent; offer() may resume afterwards.
    void flush();

    /// True once an end-of-stream marker arrived.
    bool end_of_stream_seen() const { return eos_seen_; }

    /// Seq-level counters (frame_gaps, reorders, duplicates,
    /// late_fragments, malformed, idle/datagram fields untouched). The
    /// caller owns the datagram-level counters.
    const engine::NetIngestStats& stats() const { return stats_; }

    std::size_t pending_frames() const { return partial_.size() + ready_.size(); }

  private:
    struct Partial {
        std::uint16_t fragment_count = 0;
        std::size_t received = 0;
        std::size_t bytes = 0;
        std::map<std::uint16_t, std::vector<std::uint8_t>> fragments;
    };

    void complete(std::uint64_t seq, Partial&& partial);
    void promote();
    void skip_to(std::uint64_t seq);

    SequenceTrackerConfig config_;
    engine::NetIngestStats stats_;
    std::map<std::uint64_t, Partial> partial_;          ///< incomplete frames
    std::map<std::uint64_t, std::vector<std::uint8_t>> ready_;  ///< complete, waiting for order
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> deliverable_;
    std::uint64_t next_seq_ = 0;       ///< next frame seq to deliver
    std::uint64_t highest_seen_ = 0;   ///< highest frame seq offered
    bool any_seen_ = false;
    bool eos_seen_ = false;
    std::uint64_t eos_seq_ = 0;
    bool have_last_key_ = false;
    std::pair<std::uint64_t, std::uint16_t> last_key_{0, 0};  ///< arrival order probe
};

}  // namespace witrack::net
