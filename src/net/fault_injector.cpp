#include "net/fault_injector.hpp"

#include <utility>

namespace witrack::net {

FaultInjector::FaultInjector(FaultConfig config)
    : config_(config), rng_state_(config.seed + 0x9E3779B97F4A7C15ull) {}

// splitmix64: tiny, fast, and -- unlike <random> distributions -- its
// output is pinned by the standard's arithmetic, so seeds reproduce across
// standard libraries.
std::uint64_t FaultInjector::next_u64() {
    std::uint64_t z = (rng_state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

bool FaultInjector::roll(double rate) {
    if (rate <= 0.0) return false;
    if (rate >= 1.0) return true;
    const double u = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    return u < rate;
}

std::vector<Datagram> FaultInjector::apply(std::vector<Datagram> stream) {
    if (stream.empty()) return stream;
    const std::size_t last = stream.size() - 1;

    std::vector<Datagram> out;
    out.reserve(stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
        const bool protect = config_.protect_last && i == last;
        // At most one fault per datagram (drop beats duplicate beats
        // corrupt), so each counter maps to exactly one observable
        // consequence -- a corrupted datagram is one CRC error, never a
        // corrupted duplicate that shows up as two.
        if (!protect && roll(config_.drop_rate)) {
            ++counters_.dropped;
            continue;
        }
        if (!protect && roll(config_.duplicate_rate)) {
            ++counters_.duplicated;
            out.push_back(stream[i]);
        } else if (!protect && roll(config_.corrupt_rate) &&
                   stream[i].size() >= kHeaderBytes + kTrailerBytes) {
            // Flip one byte past the header (payload when there is one, the
            // CRC trailer otherwise): the magic/version/length fields stay
            // intact, so the damage always surfaces as exactly one CRC
            // error -- never reclassified as bad magic or a truncation.
            Datagram& d = stream[i];
            const std::size_t region = d.size() - kHeaderBytes;
            d[kHeaderBytes + next_u64() % region] ^= 0x5A;
            ++counters_.corrupted;
        }
        out.push_back(std::move(stream[i]));
    }

    // Pairwise adjacent swaps; the (protected) final datagram never moves.
    if (out.size() >= 2) {
        const std::size_t stop = out.size() - (config_.protect_last ? 2 : 1);
        for (std::size_t i = 0; i < stop; ++i) {
            if (roll(config_.reorder_rate)) {
                std::swap(out[i], out[i + 1]);
                ++counters_.reordered;
                ++i;  // the swapped pair is settled
            }
        }
    }
    return out;
}

}  // namespace witrack::net
