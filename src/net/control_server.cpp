#include "net/control_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "engine/host.hpp"

namespace witrack::net {

namespace {

constexpr std::size_t kMaxLineBytes = 1 << 16;

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw_errno("control: fcntl O_NONBLOCK");
}

/// Blocking write of the whole buffer, riding out EAGAIN on a socket that
/// is otherwise non-blocking. Response lines are small; a peer that stalls
/// its receive window for 5 s full seconds forfeits the connection.
bool write_all(int fd, const char* data, std::size_t len) {
    std::size_t done = 0;
    while (done < len) {
        const ssize_t wrote = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
        if (wrote > 0) {
            done += static_cast<std::size_t>(wrote);
            continue;
        }
        if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{fd, POLLOUT, 0};
            if (::poll(&pfd, 1, 5000) <= 0) return false;
            continue;
        }
        if (wrote < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

std::vector<std::string> split_words(const std::string& line) {
    std::vector<std::string> words;
    std::istringstream in(line);
    std::string word;
    while (in >> word) words.push_back(word);
    return words;
}

bool parse_session_id(const std::string& word, engine::SessionId& id) {
    if (word.empty()) return false;
    std::uint64_t value = 0;
    for (char c : word) {
        if (c < '0' || c > '9') return false;
        if (value > (UINT64_MAX - 9) / 10) return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    id = value;
    return true;
}

}  // namespace

ControlServer::ControlServer(engine::EngineHost& host, std::uint16_t port)
    : host_(host) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("control: socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    const sockaddr_in addr = loopback_addr(port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        throw_errno("control: listen 127.0.0.1:" + std::to_string(port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        throw_errno("control: getsockname");
    }
    port_ = ntohs(bound.sin_port);
    set_nonblocking(listen_fd_);

    register_command("PING", [](const std::vector<std::string>&) {
        return std::string("OK pong");
    });
    register_command("STATS", [this](const std::vector<std::string>&) {
        return "OK " + engine::to_json(host_.take_fleet_stats());
    });
    register_command("HEALTH", [this](const std::vector<std::string>&) {
        return "OK " + engine::to_json(host_.session_health());
    });
    register_command("PAUSE", [this](const std::vector<std::string>& argv) {
        engine::SessionId id = 0;
        if (argv.size() != 1 || !parse_session_id(argv[0], id))
            return std::string("ERR usage: PAUSE <id>");
        if (host_.session(id) == nullptr)
            return "ERR unknown session " + argv[0];
        host_.pause(id);
        return "OK paused " + argv[0];
    });
    register_command("RESUME", [this](const std::vector<std::string>& argv) {
        engine::SessionId id = 0;
        if (argv.size() != 1 || !parse_session_id(argv[0], id))
            return std::string("ERR usage: RESUME <id>");
        if (host_.session(id) == nullptr)
            return "ERR unknown session " + argv[0];
        host_.resume(id);
        return "OK resumed " + argv[0];
    });
    register_command("EVICT", [this](const std::vector<std::string>& argv) {
        engine::SessionId id = 0;
        if (argv.empty() || !parse_session_id(argv[0], id))
            return std::string("ERR usage: EVICT <id> [reason...]");
        std::string reason = "control plane eviction";
        if (argv.size() > 1) {
            reason.clear();
            for (std::size_t i = 1; i < argv.size(); ++i) {
                if (i > 1) reason += ' ';
                reason += argv[i];
            }
        }
        if (!host_.evict(id, reason))
            return std::string("ERR session unknown or already terminal");
        return "OK evicted " + argv[0];
    });
    register_command("CHECKPOINT", [this](const std::vector<std::string>& argv) {
        engine::SessionId id = 0;
        if (argv.size() != 2 || !parse_session_id(argv[0], id))
            return std::string("ERR usage: CHECKPOINT <id> <path>");
        std::ofstream out(argv[1], std::ios::binary | std::ios::trunc);
        if (!out) return "ERR cannot open " + argv[1];
        host_.checkpoint_session(id, out);
        out.flush();
        if (!out) return "ERR short write to " + argv[1];
        return "OK checkpointed " + argv[0] + " " + argv[1];
    });
}

ControlServer::~ControlServer() {
    for (Connection& connection : connections_)
        if (connection.fd >= 0) ::close(connection.fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ControlServer::register_command(std::string name, Handler handler) {
    commands_[std::move(name)] = std::move(handler);
}

std::string ControlServer::dispatch(const std::string& line) {
    std::vector<std::string> words = split_words(line);
    if (words.empty()) return "ERR empty request";
    const auto it = commands_.find(words[0]);
    if (it == commands_.end()) return "ERR unknown command " + words[0];
    words.erase(words.begin());
    try {
        return it->second(words);
    } catch (const std::exception& error) {
        return std::string("ERR ") + error.what();
    }
}

void ControlServer::serve(Connection& connection) {
    char buffer[4096];
    bool eof = false;
    while (!eof) {
        const ssize_t got = ::recv(connection.fd, buffer, sizeof buffer, 0);
        if (got > 0) {
            connection.inbox.append(buffer, static_cast<std::size_t>(got));
            if (connection.inbox.size() > kMaxLineBytes) {
                connection.dead = true;  // request line absurdly long
                return;
            }
            continue;
        }
        if (got == 0) {
            eof = true;  // serve any final complete lines, then close
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        connection.dead = true;
        return;
    }
    std::size_t start = 0;
    for (;;) {
        const std::size_t end = connection.inbox.find('\n', start);
        if (end == std::string::npos) break;
        std::string line = connection.inbox.substr(start, end - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        start = end + 1;
        std::string response = dispatch(line);
        response += '\n';
        ++served_;
        if (!write_all(connection.fd, response.data(), response.size())) {
            connection.dead = true;
            return;
        }
    }
    connection.inbox.erase(0, start);
    if (eof) connection.dead = true;
}

std::size_t ControlServer::poll(int timeout_ms) {
    std::vector<pollfd> pfds;
    pfds.reserve(connections_.size() + 1);
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Connection& connection : connections_)
        pfds.push_back({connection.fd, POLLIN, 0});
    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0) {
        if (errno == EINTR) return 0;
        throw_errno("control: poll");
    }

    const std::size_t before = served_;
    if ((pfds[0].revents & POLLIN) != 0) {
        for (;;) {
            const int fd = ::accept(listen_fd_, nullptr, nullptr);
            if (fd < 0) break;  // EAGAIN et al.: accepted everything pending
            set_nonblocking(fd);
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            connections_.push_back(Connection{fd, {}, false});
        }
    }
    for (std::size_t i = 0; i < connections_.size() && i + 1 < pfds.size(); ++i) {
        Connection& connection = connections_[i];
        const short events = pfds[i + 1].revents;
        if ((events & (POLLIN | POLLHUP | POLLERR)) != 0) serve(connection);
    }
    std::erase_if(connections_, [](Connection& connection) {
        if (!connection.dead) return false;
        ::close(connection.fd);
        return true;
    });
    return served_ - before;
}

// --------------------------------------------------------- ControlClient

ControlClient::ControlClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("control client: socket");
    const sockaddr_in addr = loopback_addr(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throw_errno("control client: connect 127.0.0.1:" + std::to_string(port));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    set_nonblocking(fd_);
}

ControlClient::~ControlClient() {
    if (fd_ >= 0) ::close(fd_);
}

void ControlClient::send(const std::string& line) {
    std::string request = line;
    request += '\n';
    if (!write_all(fd_, request.data(), request.size()))
        throw std::runtime_error("control client: send failed");
}

bool ControlClient::try_receive(std::string& line) {
    for (;;) {
        const std::size_t end = inbox_.find('\n');
        if (end != std::string::npos) {
            line = inbox_.substr(0, end);
            inbox_.erase(0, end + 1);
            return true;
        }
        char buffer[4096];
        const ssize_t got = ::recv(fd_, buffer, sizeof buffer, 0);
        if (got > 0) {
            inbox_.append(buffer, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0) throw std::runtime_error("control client: server hung up");
        if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
        if (errno == EINTR) continue;
        throw_errno("control client: recv");
    }
}

std::string ControlClient::request(const std::string& line, int timeout_ms) {
    send(line);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    std::string response;
    while (!try_receive(response)) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0)
            throw std::runtime_error("control client: request timed out: " + line);
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
        if (ready < 0 && errno != EINTR) throw_errno("control client: poll");
    }
    return response;
}

}  // namespace witrack::net
