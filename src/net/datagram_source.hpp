// Where NetSource's datagrams come from. UdpSocket is the deployment
// shape (a remote radio on a lossy link); QueueDatagramSource is the
// in-memory shape that lets the fault-injection tests and benches exercise
// every degradation path deterministically, without touching a socket.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

namespace witrack::net {

class DatagramSource {
  public:
    virtual ~DatagramSource() = default;

    /// Non-blocking: move the next pending datagram into `datagram` and
    /// return true, or return false when nothing is pending right now.
    virtual bool receive(std::vector<std::uint8_t>& datagram) = 0;

    /// Block up to `timeout_ms` for a datagram to become pending. Returns
    /// true when one (probably) is -- sources with nothing in flight ever
    /// (a drained queue) return false immediately.
    virtual bool wait(int timeout_ms) = 0;

    /// True when no datagram is pending and none can ever arrive (a
    /// closed, drained queue). A live socket never reports exhaustion.
    virtual bool exhausted() const { return false; }
};

/// In-memory FIFO of datagrams: push the (possibly fault-injected) stream
/// in, close(), and NetSource consumes it exactly as it would a socket.
class QueueDatagramSource final : public DatagramSource {
  public:
    void push(std::vector<std::uint8_t> datagram) {
        queue_.push_back(std::move(datagram));
    }
    void close() { closed_ = true; }

    bool receive(std::vector<std::uint8_t>& datagram) override {
        if (queue_.empty()) return false;
        datagram = std::move(queue_.front());
        queue_.pop_front();
        return true;
    }
    bool wait(int) override { return !queue_.empty(); }
    bool exhausted() const override { return closed_ && queue_.empty(); }

  private:
    std::deque<std::vector<std::uint8_t>> queue_;
    bool closed_ = false;
};

}  // namespace witrack::net
