#include "net/frame_protocol.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/serialize.hpp"

namespace witrack::net {

namespace {

constexpr std::uint8_t kTruthPerson1 = 1u << 0;
constexpr std::uint8_t kTruthPerson2 = 1u << 1;

template <typename T>
void append_raw(Datagram& out, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto base = out.size();
    out.resize(base + sizeof value);
    std::memcpy(out.data() + base, &value, sizeof value);
}

void append_bytes(Datagram& out, const void* data, std::size_t len) {
    const auto base = out.size();
    out.resize(base + len);
    std::memcpy(out.data() + base, data, len);
}

/// Bounds-checked sequential reader over a byte span.
struct Cursor {
    std::span<const std::uint8_t> bytes;
    std::size_t pos = 0;

    template <typename T>
    bool read(T& value) {
        static_assert(std::is_trivially_copyable_v<T>);
        if (bytes.size() - pos < sizeof value) return false;
        std::memcpy(&value, bytes.data() + pos, sizeof value);
        pos += sizeof value;
        return true;
    }
};

Datagram make_datagram(std::uint16_t flags, std::uint64_t token,
                       std::uint64_t frame_seq, std::uint16_t fragment_index,
                       std::uint16_t fragment_count,
                       std::span<const std::uint8_t> payload) {
    Datagram out;
    out.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
    append_raw(out, kProtocolMagic);
    append_raw(out, kProtocolVersion);
    append_raw(out, flags);
    append_raw(out, token);
    append_raw(out, frame_seq);
    append_raw(out, fragment_index);
    append_raw(out, fragment_count);
    append_raw(out, static_cast<std::uint32_t>(payload.size()));
    if (!payload.empty()) append_bytes(out, payload.data(), payload.size());
    append_raw(out, common::crc32(out.data(), out.size()));
    return out;
}

}  // namespace

const char* to_string(DecodeStatus status) {
    switch (status) {
        case DecodeStatus::kOk: return "ok";
        case DecodeStatus::kTruncated: return "truncated";
        case DecodeStatus::kBadMagic: return "bad magic";
        case DecodeStatus::kVersionSkew: return "version skew";
        case DecodeStatus::kBadCrc: return "bad crc";
        case DecodeStatus::kMalformed: return "malformed";
    }
    return "unknown";
}

std::size_t frame_body_bytes(const engine::Frame& frame) {
    std::size_t truth = 0;
    if (frame.truth) {
        truth += 3 * sizeof(double);
        if (frame.truth->position2) truth += 3 * sizeof(double);
    }
    return sizeof(double) + 1 + truth + 3 * sizeof(std::uint32_t) +
           frame.sweeps.size() * sizeof(double);
}

std::vector<Datagram> pack_frame(const engine::Frame& frame,
                                 std::uint64_t token, std::uint64_t frame_seq,
                                 std::size_t mtu_bytes) {
    if (mtu_bytes <= kHeaderBytes + kTrailerBytes)
        throw std::invalid_argument("pack_frame: mtu leaves no payload room");
    const std::size_t chunk = mtu_bytes - kHeaderBytes - kTrailerBytes;

    Datagram body;
    body.reserve(frame_body_bytes(frame));
    append_raw(body, frame.time_s);
    std::uint8_t truth_flags = 0;
    if (frame.truth) {
        truth_flags |= kTruthPerson1;
        if (frame.truth->position2) truth_flags |= kTruthPerson2;
    }
    append_raw(body, truth_flags);
    if (frame.truth) {
        append_raw(body, frame.truth->position.x);
        append_raw(body, frame.truth->position.y);
        append_raw(body, frame.truth->position.z);
        if (frame.truth->position2) {
            append_raw(body, frame.truth->position2->x);
            append_raw(body, frame.truth->position2->y);
            append_raw(body, frame.truth->position2->z);
        }
    }
    append_raw(body, static_cast<std::uint32_t>(frame.sweeps.num_rx()));
    append_raw(body, static_cast<std::uint32_t>(frame.sweeps.num_sweeps()));
    append_raw(body, static_cast<std::uint32_t>(frame.sweeps.samples_per_sweep()));
    if (!frame.sweeps.empty())
        append_bytes(body, frame.sweeps.data(),
                     frame.sweeps.size() * sizeof(double));

    const std::size_t fragments = (body.size() + chunk - 1) / chunk;
    if (fragments > std::numeric_limits<std::uint16_t>::max())
        throw std::invalid_argument(
            "pack_frame: frame needs " + std::to_string(fragments) +
            " fragments, exceeding the u16 fragment count at mtu " +
            std::to_string(mtu_bytes));

    std::vector<Datagram> out;
    out.reserve(fragments);
    for (std::size_t i = 0; i < fragments; ++i) {
        const std::size_t offset = i * chunk;
        const std::size_t len = std::min(chunk, body.size() - offset);
        out.push_back(make_datagram(
            0, token, frame_seq, static_cast<std::uint16_t>(i),
            static_cast<std::uint16_t>(fragments),
            {body.data() + offset, len}));
    }
    return out;
}

Datagram pack_end_of_stream(std::uint64_t token, std::uint64_t end_seq) {
    return make_datagram(kFlagEndOfStream, token, end_seq, 0, 1, {});
}

DecodeStatus decode_datagram(std::span<const std::uint8_t> bytes,
                             FrameHeader& header,
                             std::span<const std::uint8_t>& payload) {
    if (bytes.size() < kHeaderBytes + kTrailerBytes)
        return DecodeStatus::kTruncated;

    Cursor cursor{bytes};
    std::uint32_t magic = 0;
    std::uint16_t version = 0;
    std::uint32_t payload_bytes = 0;
    cursor.read(magic);
    if (magic != kProtocolMagic) return DecodeStatus::kBadMagic;
    cursor.read(version);
    // Version is judged before the CRC on purpose: a future protocol
    // revision may move or widen the CRC field, so "I cannot speak this
    // version" must not be misreported as bit damage.
    if (version != kProtocolVersion) return DecodeStatus::kVersionSkew;
    cursor.read(header.flags);
    cursor.read(header.token);
    cursor.read(header.frame_seq);
    cursor.read(header.fragment_index);
    cursor.read(header.fragment_count);
    cursor.read(payload_bytes);

    if (bytes.size() != kHeaderBytes + payload_bytes + kTrailerBytes)
        return DecodeStatus::kTruncated;
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + bytes.size() - kTrailerBytes,
                sizeof stored_crc);
    if (common::crc32(bytes.data(), bytes.size() - kTrailerBytes) != stored_crc)
        return DecodeStatus::kBadCrc;

    if (header.fragment_count == 0 ||
        header.fragment_index >= header.fragment_count)
        return DecodeStatus::kMalformed;
    if (header.end_of_stream() &&
        (payload_bytes != 0 || header.fragment_count != 1))
        return DecodeStatus::kMalformed;
    // The reassembled body is bounded by fragment_count equal-size slices;
    // reject anything that could exceed the frame body cap up front.
    if (static_cast<std::size_t>(payload_bytes) *
            static_cast<std::size_t>(header.fragment_count) >
        kMaxFrameBodyBytes)
        return DecodeStatus::kMalformed;

    payload = bytes.subspan(kHeaderBytes, payload_bytes);
    return DecodeStatus::kOk;
}

bool decode_frame_body(std::span<const std::uint8_t> body, engine::Frame& frame) {
    if (body.size() > kMaxFrameBodyBytes) return false;
    Cursor cursor{body};
    if (!cursor.read(frame.time_s)) return false;
    std::uint8_t truth_flags = 0;
    if (!cursor.read(truth_flags)) return false;
    if ((truth_flags & ~(kTruthPerson1 | kTruthPerson2)) != 0) return false;
    if ((truth_flags & kTruthPerson2) != 0 && (truth_flags & kTruthPerson1) == 0)
        return false;
    frame.truth.reset();
    if ((truth_flags & kTruthPerson1) != 0) {
        engine::GroundTruth truth;
        if (!cursor.read(truth.position.x) || !cursor.read(truth.position.y) ||
            !cursor.read(truth.position.z))
            return false;
        if ((truth_flags & kTruthPerson2) != 0) {
            geom::Vec3 second;
            if (!cursor.read(second.x) || !cursor.read(second.y) ||
                !cursor.read(second.z))
                return false;
            truth.position2 = second;
        }
        frame.truth = truth;
    }

    std::uint32_t num_rx = 0, num_sweeps = 0, samples = 0;
    if (!cursor.read(num_rx) || !cursor.read(num_sweeps) || !cursor.read(samples))
        return false;
    // Multiply in stages with a bound check between them so corrupt shape
    // fields can neither overflow nor match the length by wraparound.
    const std::uint64_t rows =
        static_cast<std::uint64_t>(num_rx) * static_cast<std::uint64_t>(num_sweeps);
    if (rows > kMaxFrameBodyBytes) return false;
    const std::uint64_t total = rows * static_cast<std::uint64_t>(samples);
    const std::size_t remaining = body.size() - cursor.pos;
    if (total * sizeof(double) != remaining) return false;

    if (frame.sweeps.num_rx() != num_rx || frame.sweeps.num_sweeps() != num_sweeps ||
        frame.sweeps.samples_per_sweep() != samples)
        frame.sweeps.resize(num_rx, num_sweeps, samples);
    if (total != 0)
        std::memcpy(frame.sweeps.data(), body.data() + cursor.pos,
                    total * sizeof(double));
    return true;
}

}  // namespace witrack::net
