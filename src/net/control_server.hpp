// TCP control plane for a fleet host: a loopback line protocol through
// which an operator (or the witrackd client mode, or a test) drives a
// running EngineHost -- scrape stats, pause/resume/evict sessions, drain a
// session's state to disk -- without linking against the process.
//
// Protocol: one request per line ("COMMAND arg1 arg2 ...\n"), one response
// line per request, "OK ..." or "ERR <reason>". Built-in commands:
//
//   PING                    liveness probe -> "OK pong"
//   STATS                   -> "OK " + engine::to_json(take_fleet_stats())
//   HEALTH                  -> "OK " + engine::to_json(session_health());
//                           non-destructive (STATS resets the telemetry
//                           window; HEALTH can be polled freely)
//   PAUSE <id>              stop scheduling a session
//   RESUME <id>             resume a paused session
//   EVICT <id> [reason...]  terminally remove a session
//   CHECKPOINT <id> <path>  serialize a session's state to a file
//
// The embedding daemon registers the commands that need policy the server
// cannot know (ADMIT, DRAIN) via register_command(). The server is
// single-threaded and non-blocking: the owner calls poll() from its main
// loop between step_all() rounds; nothing here spawns a thread.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace witrack::engine {
class EngineHost;
}  // namespace witrack::engine

namespace witrack::net {

class ControlServer {
  public:
    /// A registered command: argv holds the whitespace-split arguments
    /// after the command word; the return value is the full response line
    /// (start it with "OK " or "ERR "). Thrown exceptions become
    /// "ERR <what()>".
    using Handler = std::function<std::string(const std::vector<std::string>& argv)>;

    /// Listen on 127.0.0.1:`port` (0 = ephemeral; read it back with
    /// port()). Throws std::runtime_error when the listen fails.
    explicit ControlServer(engine::EngineHost& host, std::uint16_t port = 0);
    ~ControlServer();

    ControlServer(const ControlServer&) = delete;
    ControlServer& operator=(const ControlServer&) = delete;

    std::uint16_t port() const { return port_; }

    /// Add (or override) a command. Names are matched case-sensitively;
    /// convention is UPPERCASE.
    void register_command(std::string name, Handler handler);

    /// Accept pending connections, read pending request lines, dispatch
    /// them, write the responses. Never blocks beyond `timeout_ms` (0 =
    /// return immediately when nothing is pending). Returns the number of
    /// requests served.
    std::size_t poll(int timeout_ms = 0);

  private:
    struct Connection {
        int fd = -1;
        std::string inbox;   ///< bytes read, not yet terminated by '\n'
        bool dead = false;
    };

    std::string dispatch(const std::string& line);
    void serve(Connection& connection);

    engine::EngineHost& host_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::vector<Connection> connections_;
    std::map<std::string, Handler> commands_;
    std::size_t served_ = 0;
};

/// Blocking-with-timeout client for the line protocol. request() is the
/// deployment shape (witrackd --cmd); the send/try_receive pair exists so a
/// single-threaded test can interleave client I/O with server poll() calls
/// without deadlocking.
class ControlClient {
  public:
    /// Connect to 127.0.0.1:`port`. Throws std::runtime_error on refusal.
    explicit ControlClient(std::uint16_t port);
    ~ControlClient();

    ControlClient(const ControlClient&) = delete;
    ControlClient& operator=(const ControlClient&) = delete;

    /// Fire one request line (the '\n' is appended here).
    void send(const std::string& line);

    /// Non-blocking: complete the next response line into `line` (without
    /// its '\n') and return true, or return false when none is complete
    /// yet. Throws std::runtime_error when the server hung up.
    bool try_receive(std::string& line);

    /// send() + wait up to `timeout_ms` for the response line. Throws
    /// std::runtime_error on timeout or hangup.
    std::string request(const std::string& line, int timeout_ms = 5000);

  private:
    int fd_ = -1;
    std::string inbox_;
};

}  // namespace witrack::net
