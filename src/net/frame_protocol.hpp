// The UDP frame wire protocol: how one FrameBuffer frame travels from a
// remote radio to a NetSource. A frame is serialized into a flat body
// (time, ground truth, shape, raw rx-major samples -- doubles verbatim,
// native endianness, exactly the Recorder discipline) and split into
// MTU-sized datagrams, each framed by a fixed header and a trailing CRC32
// (the one CRC implementation in the tree, common::crc32):
//
//   offset  field
//        0  magic          u32   "WTNF"
//        4  version        u16   kProtocolVersion
//        6  flags          u16   bit 0 = end-of-stream marker
//        8  session token  u64   sender identity (0 = unclaimed)
//       16  frame seq      u64   monotonically increasing per sender
//       24  fragment index u16   0-based position within the frame
//       26  fragment count u16   total fragments of this frame (>= 1)
//       28  payload bytes  u32   length of the body slice that follows
//       32  payload        ...   body bytes [index*chunk, ...)
//     32+n  crc32          u32   over header + payload (bytes [0, 32+n))
//
// Every fragment except the last carries exactly the same payload length
// (mtu - header - crc), so a receiver can place any fragment without
// waiting for its predecessors. The end-of-stream marker is a payload-less
// datagram whose frame seq is one past the last frame sent; it lets the
// receiver account frames that were lost entirely at the tail.
//
// Decoding never throws and never trusts a length field: every torn-down
// path (truncated datagram, foreign magic, version skew, CRC mismatch,
// nonsense fragment fields) maps to a DecodeStatus the caller counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "engine/frame_source.hpp"

namespace witrack::net {

inline constexpr std::uint32_t kProtocolMagic = 0x464E5457u;  // "WTNF"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::uint16_t kFlagEndOfStream = 1u << 0;

/// Header (32 bytes) + trailing CRC32 frame every datagram.
inline constexpr std::size_t kHeaderBytes = 32;
inline constexpr std::size_t kTrailerBytes = 4;

/// Default datagram budget: safely under the 1500-byte Ethernet MTU.
inline constexpr std::size_t kDefaultMtuBytes = 1400;

/// Upper bound on one reassembled frame body. A hostile fragment count
/// must fail cleanly, not drive a giant allocation (same discipline as
/// common::kMaxChunkBytes).
inline constexpr std::size_t kMaxFrameBodyBytes = std::size_t{1} << 26;

using Datagram = std::vector<std::uint8_t>;

/// Decoded view of one datagram's header fields.
struct FrameHeader {
    std::uint64_t token = 0;
    std::uint64_t frame_seq = 0;
    std::uint16_t fragment_index = 0;
    std::uint16_t fragment_count = 1;
    std::uint16_t flags = 0;
    bool end_of_stream() const { return (flags & kFlagEndOfStream) != 0; }
};

enum class DecodeStatus {
    kOk,
    kTruncated,    ///< shorter than a header, or length field disagrees
    kBadMagic,     ///< not a WiTrack net-frame datagram
    kVersionSkew,  ///< a protocol version this build does not speak
    kBadCrc,       ///< bit damage in flight
    kMalformed,    ///< header decoded but its fields are nonsense
};

/// "ok" / "truncated" / "bad magic" / ...
const char* to_string(DecodeStatus status);

/// Serialize `frame` into datagrams of at most `mtu_bytes` each. Throws
/// std::invalid_argument when the frame cannot fit 65535 fragments at this
/// MTU, or when the MTU cannot carry any payload at all.
std::vector<Datagram> pack_frame(const engine::Frame& frame,
                                 std::uint64_t token, std::uint64_t frame_seq,
                                 std::size_t mtu_bytes = kDefaultMtuBytes);

/// The end-of-stream marker: `end_seq` is one past the last frame's seq.
Datagram pack_end_of_stream(std::uint64_t token, std::uint64_t end_seq);

/// Validate and decode one datagram. On kOk, `header` holds the decoded
/// fields and `payload` views the body slice inside `bytes` (valid only as
/// long as `bytes` is). On any other status both outputs are unspecified.
DecodeStatus decode_datagram(std::span<const std::uint8_t> bytes,
                             FrameHeader& header,
                             std::span<const std::uint8_t>& payload);

/// Deserialize a reassembled frame body into `frame` (the FrameBuffer is
/// resized only on shape change, so a reused Frame stays allocation-free
/// at steady state). Returns false on a body whose shape fields disagree
/// with its length or exceed kMaxFrameBodyBytes; `frame` may be partially
/// overwritten in that case and the caller must drop it.
bool decode_frame_body(std::span<const std::uint8_t> body, engine::Frame& frame);

/// Body bytes pack_frame will serialize for this frame (header/CRC framing
/// excluded) -- lets senders size buffers and tests reason about counts.
std::size_t frame_body_bytes(const engine::Frame& frame);

}  // namespace witrack::net
