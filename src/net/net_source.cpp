#include "net/net_source.hpp"

#include <chrono>
#include <utility>

#include "net/frame_protocol.hpp"

namespace witrack::net {

NetSource::NetSource(std::unique_ptr<DatagramSource> source,
                     NetSourceConfig config)
    : config_(std::move(config)), source_(std::move(source)),
      tracker_(config_.tracker) {
    if (config_.session_token != 0) {
        adopted_token_ = config_.session_token;
        token_known_ = true;
    }
}

bool NetSource::pump() {
    bool any = false;
    while (source_->receive(datagram_)) {
        any = true;
        FrameHeader header;
        std::span<const std::uint8_t> payload;
        switch (decode_datagram(datagram_, header, payload)) {
            case DecodeStatus::kOk: break;
            case DecodeStatus::kTruncated: ++stats_.truncated; continue;
            case DecodeStatus::kBadMagic: ++stats_.bad_magic; continue;
            case DecodeStatus::kVersionSkew: ++stats_.version_skew; continue;
            case DecodeStatus::kBadCrc: ++stats_.crc_errors; continue;
            case DecodeStatus::kMalformed: ++stats_.malformed; continue;
        }
        if (!token_known_) {
            adopted_token_ = header.token;
            token_known_ = true;
        } else if (header.token != adopted_token_) {
            ++stats_.foreign_token;
            continue;
        }
        ++stats_.datagrams;
        stats_.bytes += datagram_.size();
        tracker_.offer(header, payload);
    }
    return any;
}

bool NetSource::deliver(engine::Frame& frame) {
    std::uint64_t seq = 0;
    while (tracker_.pop(seq, body_)) {
        if (decode_frame_body(body_, frame)) {
            ++stats_.frames_delivered;
            return true;
        }
        // A body that reassembled but does not parse: every datagram passed
        // its CRC, so the sender packed garbage. Count it, drop it, go on.
        ++stats_.malformed;
    }
    return false;
}

bool NetSource::next(engine::Frame& frame) {
    if (finished_) return false;
    using Clock = std::chrono::steady_clock;
    auto idle_since = Clock::now();
    while (!draining_) {
        if (pump()) idle_since = Clock::now();
        if (deliver(frame)) return true;

        const bool ended =
            tracker_.end_of_stream_seen() || source_->exhausted();
        if (!ended) {
            if (source_->wait(config_.poll_interval_ms)) continue;
            const std::chrono::duration<double> idle = Clock::now() - idle_since;
            if (idle.count() < config_.idle_timeout_s) continue;
            ++stats_.idle_timeouts;
        }
        // Stream over (cleanly or by silence): release everything still
        // pending, account the holes, hand out the stragglers.
        tracker_.flush();
        draining_ = true;
    }
    if (deliver(frame)) return true;
    finished_ = true;
    return false;
}

std::optional<engine::NetIngestStats> NetSource::net_stats() const {
    engine::NetIngestStats merged = stats_;
    merged += tracker_.stats();
    return merged;
}

}  // namespace witrack::net
