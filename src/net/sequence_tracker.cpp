#include "net/sequence_tracker.hpp"

#include <algorithm>

namespace witrack::net {

SequenceTracker::SequenceTracker(SequenceTrackerConfig config)
    : config_(config) {
    if (config_.window_frames == 0) config_.window_frames = 1;
}

void SequenceTracker::offer(const FrameHeader& header,
                            std::span<const std::uint8_t> payload) {
    if (header.end_of_stream()) {
        eos_seen_ = true;
        eos_seq_ = std::max(eos_seq_, header.frame_seq);
        return;
    }

    // Arrival-order probe: datagrams are sent (seq, fragment) ascending, so
    // any step backwards means the network reordered them. Duplicates
    // compare equal and are not reorders.
    const std::pair<std::uint64_t, std::uint16_t> key{header.frame_seq,
                                                      header.fragment_index};
    if (have_last_key_ && key < last_key_) ++stats_.reorders;
    if (!have_last_key_ || last_key_ < key) last_key_ = key;
    have_last_key_ = true;

    if (!any_seen_ || header.frame_seq > highest_seen_)
        highest_seen_ = header.frame_seq;
    any_seen_ = true;

    if (header.frame_seq < next_seq_) {
        // The frame this fragment belongs to was already delivered or
        // written off as a gap; either way its book is closed.
        ++stats_.late_fragments;
        return;
    }
    if (ready_.count(header.frame_seq) != 0) {
        ++stats_.duplicates;
        return;
    }

    Partial& partial = partial_[header.frame_seq];
    if (partial.fragment_count == 0) {
        partial.fragment_count = header.fragment_count;
    } else if (partial.fragment_count != header.fragment_count) {
        // Two fragments of one frame disagreeing about the frame's shape:
        // the sender is broken or hostile. Drop the datagram, keep what we
        // have (the consistent majority may still complete).
        ++stats_.malformed;
        return;
    }
    auto [it, inserted] = partial.fragments.try_emplace(
        header.fragment_index,
        std::vector<std::uint8_t>(payload.begin(), payload.end()));
    if (!inserted) {
        ++stats_.duplicates;
        return;
    }
    ++partial.received;
    partial.bytes += payload.size();
    if (partial.bytes > kMaxFrameBodyBytes) {
        // Cannot be a frame this protocol packed; write the seq off.
        ++stats_.malformed;
        partial_.erase(header.frame_seq);
        skip_to(header.frame_seq + 1);
        promote();
        return;
    }

    if (partial.received == partial.fragment_count)
        complete(header.frame_seq, std::move(partial));
    promote();
}

void SequenceTracker::complete(std::uint64_t seq, Partial&& partial) {
    std::vector<std::uint8_t> body;
    body.reserve(partial.bytes);
    for (auto& [index, fragment] : partial.fragments)
        body.insert(body.end(), fragment.begin(), fragment.end());
    partial_.erase(seq);
    ready_.emplace(seq, std::move(body));
}

void SequenceTracker::skip_to(std::uint64_t seq) {
    if (seq <= next_seq_) return;
    // Every seq in [next_seq_, seq) that never completed is a gap; drop
    // whatever incomplete fragments it left behind.
    std::uint64_t skipped = seq - next_seq_;
    for (auto it = ready_.begin(); it != ready_.end() && it->first < seq;)
        it = ready_.erase(it);  // unreachable in practice: promote() drains these
    for (auto it = partial_.begin(); it != partial_.end() && it->first < seq;)
        it = partial_.erase(it);
    stats_.frame_gaps += skipped;
    next_seq_ = seq;
}

void SequenceTracker::promote() {
    for (;;) {
        // In-order frames flow straight through.
        auto it = ready_.find(next_seq_);
        if (it != ready_.end()) {
            deliverable_.emplace_back(it->first, std::move(it->second));
            ready_.erase(it);
            ++next_seq_;
            continue;
        }
        // A hole at next_seq_: wait for it until the window of pending
        // seqs beyond the hole fills, then write the hole off as a gap.
        const std::uint64_t frontier = std::max<std::uint64_t>(
            ready_.empty() ? 0 : ready_.rbegin()->first,
            partial_.empty() ? 0 : partial_.rbegin()->first);
        const bool overflowing =
            (!ready_.empty() || !partial_.empty()) &&
            frontier - next_seq_ >= config_.window_frames;
        if (!overflowing) return;
        // Advance to the oldest frame we still might deliver.
        std::uint64_t target = frontier;
        if (!ready_.empty()) target = std::min(target, ready_.begin()->first);
        if (!partial_.empty()) target = std::min(target, partial_.begin()->first);
        if (target == next_seq_) {
            // The oldest pending seq IS next_seq_ (an incomplete partial
            // blocking a full window): give up on completing it.
            partial_.erase(next_seq_);
            skip_to(next_seq_ + 1);
        } else {
            skip_to(target);
        }
    }
}

void SequenceTracker::flush() {
    // Deliver every completed frame in order, writing the incomplete seqs
    // between them off as gaps.
    while (!ready_.empty()) {
        skip_to(ready_.begin()->first);
        promote();
    }
    // Everything left is incomplete; account it and the wholly-missing
    // tail up to the stream bound.
    std::uint64_t bound = next_seq_;
    if (eos_seen_) bound = std::max(bound, eos_seq_);
    if (any_seen_) bound = std::max(bound, highest_seen_ + 1);
    skip_to(bound);
}

bool SequenceTracker::pop(std::uint64_t& frame_seq,
                          std::vector<std::uint8_t>& body) {
    if (deliverable_.empty()) return false;
    frame_seq = deliverable_.front().first;
    body = std::move(deliverable_.front().second);
    deliverable_.pop_front();
    return true;
}

}  // namespace witrack::net
