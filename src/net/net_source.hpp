// NetSource: the fourth FrameSource. Where SimSource synthesizes frames and
// ReplaySource reads them from disk, NetSource reassembles them from a
// datagram stream -- a UdpSocket bound to an ingest port in deployment, or a
// QueueDatagramSource in the deterministic fault-injection rigs. Every way
// the wire can misbehave lands in a NetIngestStats counter that Engine and
// EngineHost surface into FleetStats; none of them can crash the pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "engine/frame_source.hpp"
#include "net/datagram_source.hpp"
#include "net/sequence_tracker.hpp"

namespace witrack::net {

struct NetSourceConfig {
    FmcwParams fmcw;
    /// Deployment geometry of the remote sender (the wire carries sweeps,
    /// not geometry). Default matches the simulator's T array.
    geom::ArrayGeometry array = geom::make_t_array({0.0, 0.0, 1.3}, 1.0);

    /// Expected session token; datagrams carrying any other token are
    /// dropped (foreign_token). 0 adopts the first token seen.
    std::uint64_t session_token = 0;

    /// Seconds of silence (no datagram at all) before next() gives up on
    /// the sender, flushes what it has, and ends the stream.
    double idle_timeout_s = 5.0;

    /// How long one wait on the datagram source blocks before the idle
    /// clock is checked again.
    int poll_interval_ms = 20;

    SequenceTrackerConfig tracker;
};

class NetSource final : public engine::FrameSource {
  public:
    NetSource(std::unique_ptr<DatagramSource> source, NetSourceConfig config);

    /// Blocks (in poll_interval_ms slices) until an in-order frame is
    /// reassembled. False -- the stream is over -- after an end-of-stream
    /// marker, when an in-memory source is exhausted, or after
    /// idle_timeout_s of silence; whichever ends it, pending complete
    /// frames are flushed out first and missing seqs are counted as gaps.
    bool next(engine::Frame& frame) override;

    const geom::ArrayGeometry& array() const override { return config_.array; }
    const FmcwParams& fmcw() const override { return config_.fmcw; }

    /// Live ingestion counters: datagram-level accounting merged with the
    /// sequence tracker's frame-level accounting.
    std::optional<engine::NetIngestStats> net_stats() const override;

    /// Drain every datagram currently pending on the source into the
    /// tracker without blocking. next() calls this itself; external event
    /// loops (the daemon, the interleaved send/step test rigs) call it to
    /// keep the kernel socket buffer from overflowing between frames.
    /// Returns true when at least one datagram arrived.
    bool pump();

    // save_state/load_state keep the throwing FrameSource defaults: a
    // network stream has no replayable cursor, so snapshotting a net-fed
    // session fails loudly (checkpoint its engine after eviction instead).

  private:
    bool deliver(engine::Frame& frame);

    NetSourceConfig config_;
    std::unique_ptr<DatagramSource> source_;
    SequenceTracker tracker_;
    engine::NetIngestStats stats_;   ///< datagram-level counters
    std::uint64_t adopted_token_ = 0;
    bool token_known_ = false;
    bool draining_ = false;  ///< stream ended, handing out flushed stragglers
    bool finished_ = false;
    std::vector<std::uint8_t> datagram_;  ///< receive scratch, reused
    std::vector<std::uint8_t> body_;      ///< reassembled body scratch, reused
};

}  // namespace witrack::net
