// Thin RAII wrapper over a POSIX UDP socket, loopback-oriented: enough for
// a radio daemon on the same box or a LAN ingest port, and for the
// loopback test rigs. Receives are non-blocking (receive()) with an
// explicit poll-based wait(); sends address 127.0.0.1 directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/datagram_source.hpp"

namespace witrack::net {

class UdpSocket final : public DatagramSource {
  public:
    /// Bind a datagram socket to 127.0.0.1:`port` (0 = kernel-assigned
    /// ephemeral port, read it back with local_port()). Throws
    /// std::runtime_error when the bind fails.
    explicit UdpSocket(std::uint16_t port = 0);
    ~UdpSocket() override;

    UdpSocket(UdpSocket&& other) noexcept;
    UdpSocket& operator=(UdpSocket&& other) noexcept;
    UdpSocket(const UdpSocket&) = delete;
    UdpSocket& operator=(const UdpSocket&) = delete;

    std::uint16_t local_port() const { return port_; }

    /// Fire one datagram at 127.0.0.1:`port`. Throws std::runtime_error on
    /// a send error (a full socket buffer is an error here on purpose: the
    /// loopback rigs must notice losing datagrams at the sender, not
    /// silently degrade).
    void send_to(std::uint16_t port, std::span<const std::uint8_t> bytes);

    // ----------------------------------------------- DatagramSource
    bool receive(std::vector<std::uint8_t>& datagram) override;
    bool wait(int timeout_ms) override;

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

}  // namespace witrack::net
