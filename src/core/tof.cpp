#include "core/tof.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/serialize.hpp"
#include "common/worker_pool.hpp"

namespace witrack::core {

TofEstimator::TofEstimator(const PipelineConfig& config, std::size_t num_rx,
                           dsp::FftPlanCache* plans)
    : config_(config),
      processors_(config.fmcw, config.window, config.fft_size, 1, plans),
      contour_(config) {
    if (num_rx == 0) throw std::invalid_argument("TofEstimator: need >= 1 antenna");
    per_rx_.reserve(num_rx);
    for (std::size_t i = 0; i < num_rx; ++i) per_rx_.emplace_back(config_);
    profiles_.resize(num_rx);
    magnitude_.resize(num_rx);
    contour_scratch_.resize(num_rx);
    step_slots_.resize(num_rx);
    lane_flags_.resize(num_rx, kLaneOk);
}

void TofEstimator::enable_static_training() {
    for (auto& antenna : per_rx_)
        antenna.background = BackgroundSubtractor(BackgroundMode::kStaticTraining);
}

void TofEstimator::train_background(const FrameBuffer& frame) {
    if (frame.num_rx() < per_rx_.size())
        throw std::invalid_argument("TofEstimator: missing antenna in sweep data");
    for (std::size_t rx = 0; rx < per_rx_.size(); ++rx) {
        processors_.lane(0).process_into(frame.antenna(rx), frame.num_sweeps(),
                                         profiles_[rx]);
        per_rx_[rx].background.train(profiles_[rx]);
    }
}

void TofEstimator::set_worker_pool(common::WorkerPool* pool) {
    pool_ = pool;
    // One FFT lane per antenna: a SweepProcessor owns its scratch and must
    // not be shared across threads.
    if (pool_ != nullptr) processors_.ensure_lanes(per_rx_.size());
}

void TofEstimator::latch_quality(const FrameBuffer& frame) {
    const FrameQuality& quality = frame.quality();
    lane_flags_.assign(per_rx_.size(), kLaneOk);
    if (quality.rx.empty()) return;  // pristine frame: nothing to latch
    for (std::size_t rx = 0; rx < per_rx_.size(); ++rx) {
        if (!quality.lane_valid(rx))
            lane_flags_[rx] = kLaneDead;
        else if (quality.lane_saturated(rx))
            lane_flags_[rx] = kLaneSaturated;
    }
}

void TofEstimator::mark_dead(AntennaFrame& out) {
    out.contour = ContourPoint{};
    out.denoised_m.reset();
    out.peaks.clear();
    out.profile.clear();
    out.hw_valid = false;
}

void TofEstimator::process_rx(std::size_t rx, SweepProcessor& processor,
                              const FrameBuffer& frame, double dt,
                              AntennaFrame& out) {
    if (lane_flags_[rx] == kLaneDead) {
        mark_dead(out);
        return;
    }
    {
        ScopedStepTimer timer(step_slots_[rx].fft);
        processor.process_into(frame.antenna(rx), frame.num_sweeps(),
                               profiles_[rx]);
    }
    post_rx(rx, dt, out);
}

void TofEstimator::post_rx(std::size_t rx, double dt, AntennaFrame& out) {
    auto& antenna_state = per_rx_[rx];
    const auto& profile = profiles_[rx];
    auto& magnitude = magnitude_[rx];
    auto& scratch = contour_scratch_[rx];
    auto& slot = step_slots_[rx];
    {
        // A saturated lane still localizes off its subtracted profile, but
        // the clipped spectrum must not poison the background history the
        // next frames subtract against (kFrameDiff previous frame /
        // kStaticTraining running model): read-only subtraction.
        ScopedStepTimer timer(slot.subtract);
        antenna_state.background.subtract_into(
            profile, magnitude,
            /*update_history=*/lane_flags_[rx] != kLaneSaturated);
    }

    // The output frame is persistent: reset the fields this frame may not
    // write (clear()/copy-assign reuse capacity, so no allocations).
    out.hw_valid = true;
    out.contour = ContourPoint{};
    out.peaks.clear();
    scratch.start_frame();  // new profile: invalidate the noise-floor cache

    if (!magnitude.empty()) {
        ScopedStepTimer timer(slot.contour);
        if (config_.contour_peaks > 1) {
            contour_.extract_peaks_into(magnitude, profile.bin_round_trip_m,
                                        config_.contour_peaks, scratch,
                                        out.peaks);
            out.contour = out.peaks.empty() ? ContourPoint{} : out.peaks.front();
        } else {
            out.contour =
                contour_.extract(magnitude, profile.bin_round_trip_m, scratch);
        }

        // Gated re-detection: if the global contour missed (weak echo)
        // or jumped implausibly (multipath grabbed the contour), look
        // for the person near where continuity says she must be.
        const auto& last = antenna_state.denoiser.last_value();
        if (last && config_.gate_window_m > 0.0) {
            bool need_gate = !out.contour.detected;
            if (!need_gate)
                need_gate = out.contour.round_trip_m >
                            *last + config_.max_contour_jump_m;
            if (!need_gate) {
                antenna_state.gated_streak = 0;
            } else if (antenna_state.gated_streak < config_.gate_max_streak) {
                const auto gated = contour_.extract_near(
                    magnitude, profile.bin_round_trip_m, *last,
                    config_.gate_window_m, scratch, config_.gate_relax);
                if (gated.detected) {
                    out.contour = gated;
                    ++antenna_state.gated_streak;
                }
            }
        }
    }
    {
        ScopedStepTimer timer(slot.denoise);
        out.denoised_m = antenna_state.denoiser.update(out.contour, dt);
    }
    if (config_.record_profiles)
        out.profile = magnitude;
    else
        out.profile.clear();
}

void TofEstimator::roll_up_steps() {
    for (auto& slot : step_slots_) {
        step_stats_.merge(slot);
        slot.reset();
    }
}

const TofFrame& TofEstimator::process_frame(const FrameBuffer& frame,
                                            double time_s) {
    if (frame.num_rx() < per_rx_.size())
        throw std::invalid_argument("TofEstimator: missing antenna in sweep data");

    frame_out_.time_s = time_s;
    frame_out_.antennas.resize(per_rx_.size());
    latch_quality(frame);

    const double dt = config_.fmcw.frame_duration_s();

    if (pool_ != nullptr && per_rx_.size() > 1) {
        // Per-RX fan-out: every lane's state is rx-disjoint (including its
        // step-counter slot), so the only coordination needed is the
        // parallel_for join.
        pool_->parallel_for(per_rx_.size(), [&](std::size_t rx) {
            process_rx(rx, processors_.lane(rx), frame, dt,
                       frame_out_.antennas[rx]);
        });
    } else {
        for (std::size_t rx = 0; rx < per_rx_.size(); ++rx)
            process_rx(rx, processors_.lane(0), frame, dt,
                       frame_out_.antennas[rx]);
    }
    roll_up_steps();
    return frame_out_;
}

void TofEstimator::stage_frame(const FrameBuffer& frame, double time_s,
                               dsp::FftBatch& batch) {
    if (frame.num_rx() < per_rx_.size())
        throw std::invalid_argument("TofEstimator: missing antenna in sweep data");
    staged_time_s_ = time_s;
    latch_quality(frame);
    // One FFT lane per antenna so every staged transform's averaging
    // buffer is distinct. Lanes are identically configured, so lane(rx)
    // produces bit-identically what the serial path's lane(0) would.
    processors_.ensure_lanes(per_rx_.size());
    for (std::size_t rx = 0; rx < per_rx_.size(); ++rx) {
        // Dead lanes stage no transform (the serial path skips their FFT
        // too, so serial/batched parity holds under faults as well).
        if (lane_flags_[rx] == kLaneDead) continue;
        processors_.lane(rx).stage_into(frame.antenna(rx), frame.num_sweeps(),
                                        profiles_[rx], batch);
    }
}

const TofFrame& TofEstimator::finish_frame() {
    frame_out_.time_s = staged_time_s_;
    frame_out_.antennas.resize(per_rx_.size());
    const double dt = config_.fmcw.frame_duration_s();
    for (std::size_t rx = 0; rx < per_rx_.size(); ++rx) {
        if (lane_flags_[rx] == kLaneDead) {
            mark_dead(frame_out_.antennas[rx]);
            continue;
        }
        {
            // The transform itself ran inside the caller's batch; only the
            // metadata fill lands in the FFT step here.
            ScopedStepTimer timer(step_slots_[rx].fft);
            processors_.lane(rx).finalize_profile(profiles_[rx]);
        }
        post_rx(rx, dt, frame_out_.antennas[rx]);
    }
    roll_up_steps();
    return frame_out_;
}

void TofEstimator::reset() {
    for (auto& antenna : per_rx_) {
        antenna.background.reset();
        antenna.denoiser.reset();
        antenna.gated_streak = 0;
    }
}

void TofEstimator::save_state(common::StateWriter& writer) const {
    writer.u64(per_rx_.size());
    for (const auto& antenna : per_rx_) {
        antenna.background.save_state(writer);
        antenna.denoiser.save_state(writer);
        writer.u64(antenna.gated_streak);
    }
}

void TofEstimator::load_state(common::StateReader& reader) {
    const auto num_rx = static_cast<std::size_t>(reader.u64());
    if (num_rx != per_rx_.size())
        throw std::runtime_error("TofEstimator: snapshot antenna count mismatch");
    for (auto& antenna : per_rx_) {
        antenna.background.load_state(reader);
        antenna.denoiser.load_state(reader);
        antenna.gated_streak = static_cast<std::size_t>(reader.u64());
    }
}

void save_state(common::StateWriter& writer, const ContourPoint& point) {
    writer.boolean(point.detected);
    writer.f64(point.round_trip_m);
    writer.f64(point.power);
    writer.f64(point.noise_floor);
    writer.f64(point.extent_m);
}

void load_state(common::StateReader& reader, ContourPoint& point) {
    point.detected = reader.boolean();
    point.round_trip_m = reader.f64();
    point.power = reader.f64();
    point.noise_floor = reader.f64();
    point.extent_m = reader.f64();
}

void save_state(common::StateWriter& writer, const AntennaFrame& antenna) {
    save_state(writer, antenna.contour);
    writer.boolean(antenna.denoised_m.has_value());
    writer.f64(antenna.denoised_m.value_or(0.0));
    writer.u64(antenna.peaks.size());
    for (const auto& peak : antenna.peaks) save_state(writer, peak);
    writer.f64_vector(antenna.profile);
    writer.boolean(antenna.hw_valid);
}

void load_state(common::StateReader& reader, AntennaFrame& antenna) {
    load_state(reader, antenna.contour);
    const bool have_denoised = reader.boolean();
    const double denoised = reader.f64();
    antenna.denoised_m =
        have_denoised ? std::optional<double>(denoised) : std::nullopt;
    antenna.peaks.resize(reader.count(sizeof(double)));
    for (auto& peak : antenna.peaks) load_state(reader, peak);
    antenna.profile = reader.f64_vector();
    antenna.hw_valid = reader.boolean();
}

void save_state(common::StateWriter& writer, const TofFrame& frame) {
    writer.f64(frame.time_s);
    writer.u64(frame.antennas.size());
    for (const auto& antenna : frame.antennas) save_state(writer, antenna);
}

void load_state(common::StateReader& reader, TofFrame& frame) {
    frame.time_s = reader.f64();
    frame.antennas.resize(reader.count(sizeof(double)));
    for (auto& antenna : frame.antennas) load_state(reader, antenna);
}

}  // namespace witrack::core
