// Lightweight per-pipeline-step cycle profiling for the realtime frame
// path. The hot path records raw timestamp-counter deltas (one rdtsc pair
// per step, ~tens of cycles of overhead against a multi-microsecond step)
// into per-lane counters; conversion to seconds happens only when the
// counters are harvested, using a once-per-process calibration against
// steady_clock. Counters are plain accumulators with no locks: each
// concurrency lane (per-RX worker) owns its own StepCounter set and the
// owner merges after the join, so the hot path is race-free by structure.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace witrack::core {

/// Raw monotonic tick source: the x86-64 timestamp counter (constant-rate
/// on every deployment-relevant CPU), steady_clock ticks elsewhere.
inline std::uint64_t profile_ticks() {
#if defined(__x86_64__) || defined(_M_X64)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Seconds per profile_ticks() tick, calibrated once per process against
/// steady_clock (a ~2 ms one-time busy wait on first use). Harvest-time
/// only -- never called on the frame path.
inline double profile_seconds_per_tick() {
    static const double seconds_per_tick = [] {
        const auto t0 = std::chrono::steady_clock::now();
        const std::uint64_t c0 = profile_ticks();
        while (std::chrono::steady_clock::now() - t0 <
               std::chrono::milliseconds(2)) {
        }
        const std::uint64_t c1 = profile_ticks();
        const auto t1 = std::chrono::steady_clock::now();
        const double seconds = std::chrono::duration<double>(t1 - t0).count();
        return c1 > c0 ? seconds / static_cast<double>(c1 - c0) : 0.0;
    }();
    return seconds_per_tick;
}

/// Accumulated cost of one pipeline step: sample count, total ticks, and
/// the worst single sample.
struct StepCounter {
    std::uint64_t frames = 0;
    std::uint64_t ticks = 0;
    std::uint64_t max_ticks = 0;

    void add(std::uint64_t t) {
        ++frames;
        ticks += t;
        if (t > max_ticks) max_ticks = t;
    }
    void merge(const StepCounter& other) {
        frames += other.frames;
        ticks += other.ticks;
        if (other.max_ticks > max_ticks) max_ticks = other.max_ticks;
    }
    void reset() { frames = 0; ticks = 0; max_ticks = 0; }

    double total_seconds() const {
        return static_cast<double>(ticks) * profile_seconds_per_tick();
    }
    double max_seconds() const {
        return static_cast<double>(max_ticks) * profile_seconds_per_tick();
    }
};

/// RAII step timer: records the enclosing scope's tick delta into the
/// counter at scope exit.
class ScopedStepTimer {
  public:
    explicit ScopedStepTimer(StepCounter& counter)
        : counter_(counter), start_(profile_ticks()) {}
    ~ScopedStepTimer() { counter_.add(profile_ticks() - start_); }
    ScopedStepTimer(const ScopedStepTimer&) = delete;
    ScopedStepTimer& operator=(const ScopedStepTimer&) = delete;

  private:
    StepCounter& counter_;
    std::uint64_t start_;
};

}  // namespace witrack::core
