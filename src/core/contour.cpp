#include "core/contour.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/tail_kernels.hpp"

namespace witrack::core {

namespace {

struct BinWindow {
    std::size_t lo, hi;  // [lo, hi)
};

BinWindow usable_window(const PipelineConfig& config, std::size_t bins,
                        double bin_round_trip_m) {
    const auto lo = static_cast<std::size_t>(
        std::max(1.0, config.min_round_trip_m / bin_round_trip_m));
    const auto hi = std::min(
        bins, static_cast<std::size_t>(config.max_round_trip_m / bin_round_trip_m) + 1);
    return {std::min(lo, bins), hi};
}

// Robust per-frame noise floor from the usable band; median magnitude is
// dominated by empty bins because the body occupies only a few. The scratch
// caches the result per (lo, hi) band, so the gated re-detection pass of
// the same frame reuses the floor the detection pass computed instead of
// re-selecting it -- one order-statistics pass per antenna per frame.
double banded_noise_floor(const std::vector<double>& magnitude, std::size_t lo,
                          std::size_t hi, ContourScratch& scratch) {
    if (scratch.floor_valid && scratch.floor_lo == lo && scratch.floor_hi == hi)
        return scratch.floor_value;
    scratch.floor_samples.assign(magnitude.begin() + static_cast<long>(lo),
                                 magnitude.begin() + static_cast<long>(hi));
    scratch.floor_value = dsp::noise_floor_inplace(scratch.floor_samples, 50.0);
    scratch.floor_valid = true;
    scratch.floor_lo = lo;
    scratch.floor_hi = hi;
    return scratch.floor_value;
}

}  // namespace

double ContourTracker::measure_extent(const std::vector<double>& magnitude,
                                      double threshold, std::size_t lo, std::size_t hi,
                                      double bin_round_trip_m) const {
    const dsp::tail::Moments m = dsp::tail::extent_moments(
        magnitude.data(), lo, hi, threshold, bin_round_trip_m);
    if (m.w_sum <= 0.0) return 0.0;
    const double mean = m.m1 / m.w_sum;
    return std::sqrt(std::max(0.0, m.m2 / m.w_sum - mean * mean));
}

void ContourTracker::extract_peaks_into(const std::vector<double>& magnitude,
                                        double bin_round_trip_m,
                                        std::size_t max_peaks,
                                        ContourScratch& scratch,
                                        std::vector<ContourPoint>& out) const {
    out.clear();
    if (magnitude.size() < 8 || max_peaks == 0) return;

    const auto [lo, hi] = usable_window(config_, magnitude.size(), bin_round_trip_m);
    if (lo + 4 >= hi) return;

    const double floor = banded_noise_floor(magnitude, lo, hi, scratch);
    const double threshold = floor * config_.contour_threshold;

    // Closest-first local maxima, kept at least 2 bins apart so one body
    // echo is not double-counted.
    dsp::find_peaks_window(magnitude.data(), lo, hi, threshold, 3,
                           scratch.candidates, scratch.peaks);
    const double extent =
        measure_extent(magnitude, threshold, lo, hi, bin_round_trip_m);

    for (const auto& peak : scratch.peaks) {
        if (out.size() >= max_peaks) break;
        ContourPoint point;
        point.detected = true;
        point.round_trip_m = peak.interpolated * bin_round_trip_m;
        point.power = peak.value;
        point.noise_floor = floor;
        point.extent_m = extent;
        out.push_back(point);
    }
}

ContourPoint ContourTracker::extract(const std::vector<double>& magnitude,
                                     double bin_round_trip_m,
                                     ContourScratch& scratch) const {
    extract_peaks_into(magnitude, bin_round_trip_m, 1, scratch, scratch.points);
    if (!scratch.points.empty()) return scratch.points.front();
    ContourPoint none;
    if (magnitude.size() >= 8) {
        const auto [lo, hi] = usable_window(config_, magnitude.size(), bin_round_trip_m);
        if (lo + 4 < hi) none.noise_floor = banded_noise_floor(magnitude, lo, hi, scratch);
    }
    return none;
}

ContourPoint ContourTracker::extract_near(const std::vector<double>& magnitude,
                                          double bin_round_trip_m, double center_m,
                                          double window_m, ContourScratch& scratch,
                                          double relax) const {
    ContourPoint point;
    if (magnitude.size() < 8) return point;
    const auto [glo, ghi] = usable_window(config_, magnitude.size(), bin_round_trip_m);
    if (glo + 4 >= ghi) return point;

    // Noise floor still comes from the full usable band (cached when the
    // detection pass of this frame already computed it).
    const double floor = banded_noise_floor(magnitude, glo, ghi, scratch);
    const double threshold = floor * config_.contour_threshold * relax;

    const double lo_m = std::max(center_m - window_m,
                                 static_cast<double>(glo) * bin_round_trip_m);
    const double hi_m = std::min(center_m + window_m,
                                 static_cast<double>(ghi - 1) * bin_round_trip_m);
    const auto lo = static_cast<std::size_t>(lo_m / bin_round_trip_m);
    const auto hi = static_cast<std::size_t>(hi_m / bin_round_trip_m) + 1;
    if (lo + 2 >= hi || hi > magnitude.size()) return point;

    // Strongest bin inside the gate (the gate is narrow, so "strongest"
    // and "closest" coincide for a single body). max_bin keeps the first
    // index of the maximum, matching a forward strictly-greater scan.
    const std::size_t best =
        lo + 1 + dsp::tail::max_bin(magnitude.data() + lo + 1, hi - lo - 2);
    if (magnitude[best] < threshold) {
        point.noise_floor = floor;
        return point;
    }
    point.detected = true;
    point.round_trip_m =
        dsp::parabolic_peak_position_window(magnitude.data(), 0,
                                            magnitude.size(), best) *
        bin_round_trip_m;
    point.power = magnitude[best];
    point.noise_floor = floor;
    point.extent_m =
        measure_extent(magnitude, floor * config_.contour_threshold, glo, ghi,
                       bin_round_trip_m);
    return point;
}

ContourPoint ContourTracker::extract_strongest(const std::vector<double>& magnitude,
                                               double bin_round_trip_m,
                                               ContourScratch& scratch) const {
    ContourPoint point;
    if (magnitude.size() < 8) return point;
    const auto [lo, hi] = usable_window(config_, magnitude.size(), bin_round_trip_m);
    if (lo + 4 >= hi) return point;

    const double floor = banded_noise_floor(magnitude, lo, hi, scratch);
    const double threshold = floor * config_.contour_threshold;

    const std::size_t best = lo + dsp::tail::max_bin(magnitude.data() + lo, hi - lo);
    if (magnitude[best] < threshold) {
        point.noise_floor = floor;
        return point;
    }
    point.detected = true;
    point.round_trip_m =
        dsp::parabolic_peak_position_window(magnitude.data(), lo, hi, best) *
        bin_round_trip_m;
    point.power = magnitude[best];
    point.noise_floor = floor;
    point.extent_m = measure_extent(magnitude, threshold, lo, hi, bin_round_trip_m);
    return point;
}

ContourPoint ContourTracker::extract(const std::vector<double>& magnitude,
                                     double bin_round_trip_m) const {
    ContourScratch scratch;
    return extract(magnitude, bin_round_trip_m, scratch);
}

std::vector<ContourPoint> ContourTracker::extract_peaks(
    const std::vector<double>& magnitude, double bin_round_trip_m,
    std::size_t max_peaks) const {
    ContourScratch scratch;
    std::vector<ContourPoint> result;
    extract_peaks_into(magnitude, bin_round_trip_m, max_peaks, scratch, result);
    return result;
}

ContourPoint ContourTracker::extract_strongest(const std::vector<double>& magnitude,
                                               double bin_round_trip_m) const {
    ContourScratch scratch;
    return extract_strongest(magnitude, bin_round_trip_m, scratch);
}

ContourPoint ContourTracker::extract_near(const std::vector<double>& magnitude,
                                          double bin_round_trip_m, double center_m,
                                          double window_m, double relax) const {
    ContourScratch scratch;
    return extract_near(magnitude, bin_round_trip_m, center_m, window_m, scratch,
                        relax);
}

}  // namespace witrack::core
