#include "core/contour.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/peaks.hpp"

namespace witrack::core {

namespace {

struct BinWindow {
    std::size_t lo, hi;  // [lo, hi)
};

BinWindow usable_window(const PipelineConfig& config, std::size_t bins,
                        double bin_round_trip_m) {
    const auto lo = static_cast<std::size_t>(
        std::max(1.0, config.min_round_trip_m / bin_round_trip_m));
    const auto hi = std::min(
        bins, static_cast<std::size_t>(config.max_round_trip_m / bin_round_trip_m) + 1);
    return {std::min(lo, bins), hi};
}

}  // namespace

double ContourTracker::measure_extent(const std::vector<double>& magnitude,
                                      double threshold, std::size_t lo, std::size_t hi,
                                      double bin_round_trip_m) const {
    double w_sum = 0.0, m1 = 0.0, m2 = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
        if (magnitude[i] < threshold) continue;
        const double d = static_cast<double>(i) * bin_round_trip_m;
        const double w = magnitude[i] * magnitude[i];
        w_sum += w;
        m1 += w * d;
        m2 += w * d * d;
    }
    if (w_sum <= 0.0) return 0.0;
    const double mean = m1 / w_sum;
    return std::sqrt(std::max(0.0, m2 / w_sum - mean * mean));
}

std::vector<ContourPoint> ContourTracker::extract_peaks(
    const std::vector<double>& magnitude, double bin_round_trip_m,
    std::size_t max_peaks) const {
    std::vector<ContourPoint> result;
    if (magnitude.size() < 8 || max_peaks == 0) return result;

    const auto [lo, hi] = usable_window(config_, magnitude.size(), bin_round_trip_m);
    if (lo + 4 >= hi) return result;

    // Robust per-frame noise floor from the usable band; median magnitude is
    // dominated by empty bins because the body occupies only a few.
    std::vector<double> band(magnitude.begin() + static_cast<long>(lo),
                             magnitude.begin() + static_cast<long>(hi));
    const double floor = dsp::noise_floor(band, 50.0);
    const double threshold = floor * config_.contour_threshold;

    // Closest-first local maxima, kept at least 2 bins apart so one body
    // echo is not double-counted.
    const auto peaks = dsp::find_peaks(band, threshold, 3);
    const double extent =
        measure_extent(magnitude, threshold, lo, hi, bin_round_trip_m);

    for (const auto& peak : peaks) {
        if (result.size() >= max_peaks) break;
        ContourPoint point;
        point.detected = true;
        point.round_trip_m =
            (static_cast<double>(lo) + peak.interpolated) * bin_round_trip_m;
        point.power = peak.value;
        point.noise_floor = floor;
        point.extent_m = extent;
        result.push_back(point);
    }
    if (result.empty()) {
        ContourPoint none;
        none.noise_floor = floor;
        none.extent_m = 0.0;
        result.push_back(none);
        result.clear();
    }
    return result;
}

ContourPoint ContourTracker::extract(const std::vector<double>& magnitude,
                                     double bin_round_trip_m) const {
    const auto peaks = extract_peaks(magnitude, bin_round_trip_m, 1);
    if (!peaks.empty()) return peaks.front();
    ContourPoint none;
    if (magnitude.size() >= 8) {
        const auto [lo, hi] = usable_window(config_, magnitude.size(), bin_round_trip_m);
        if (lo + 4 < hi) {
            std::vector<double> band(magnitude.begin() + static_cast<long>(lo),
                                     magnitude.begin() + static_cast<long>(hi));
            none.noise_floor = dsp::noise_floor(band, 50.0);
        }
    }
    return none;
}

ContourPoint ContourTracker::extract_near(const std::vector<double>& magnitude,
                                          double bin_round_trip_m, double center_m,
                                          double window_m, double relax) const {
    ContourPoint point;
    if (magnitude.size() < 8) return point;
    const auto [glo, ghi] = usable_window(config_, magnitude.size(), bin_round_trip_m);
    if (glo + 4 >= ghi) return point;

    // Noise floor still comes from the full usable band.
    std::vector<double> band(magnitude.begin() + static_cast<long>(glo),
                             magnitude.begin() + static_cast<long>(ghi));
    const double floor = dsp::noise_floor(band, 50.0);
    const double threshold = floor * config_.contour_threshold * relax;

    const double lo_m = std::max(center_m - window_m,
                                 static_cast<double>(glo) * bin_round_trip_m);
    const double hi_m = std::min(center_m + window_m,
                                 static_cast<double>(ghi - 1) * bin_round_trip_m);
    const auto lo = static_cast<std::size_t>(lo_m / bin_round_trip_m);
    const auto hi = static_cast<std::size_t>(hi_m / bin_round_trip_m) + 1;
    if (lo + 2 >= hi || hi > magnitude.size()) return point;

    // Strongest bin inside the gate (the gate is narrow, so "strongest"
    // and "closest" coincide for a single body).
    std::size_t best = lo + 1;
    for (std::size_t i = lo + 1; i + 1 < hi; ++i)
        if (magnitude[i] > magnitude[best]) best = i;
    if (magnitude[best] < threshold) {
        point.noise_floor = floor;
        return point;
    }
    point.detected = true;
    point.round_trip_m =
        dsp::parabolic_peak_position(magnitude, best) * bin_round_trip_m;
    point.power = magnitude[best];
    point.noise_floor = floor;
    point.extent_m =
        measure_extent(magnitude, floor * config_.contour_threshold, glo, ghi,
                       bin_round_trip_m);
    return point;
}

ContourPoint ContourTracker::extract_strongest(const std::vector<double>& magnitude,
                                               double bin_round_trip_m) const {
    ContourPoint point;
    if (magnitude.size() < 8) return point;
    const auto [lo, hi] = usable_window(config_, magnitude.size(), bin_round_trip_m);
    if (lo + 4 >= hi) return point;

    std::vector<double> band(magnitude.begin() + static_cast<long>(lo),
                             magnitude.begin() + static_cast<long>(hi));
    const double floor = dsp::noise_floor(band, 50.0);
    const double threshold = floor * config_.contour_threshold;

    std::size_t best = 0;
    for (std::size_t i = 1; i < band.size(); ++i)
        if (band[i] > band[best]) best = i;
    if (band[best] < threshold) {
        point.noise_floor = floor;
        return point;
    }
    point.detected = true;
    point.round_trip_m =
        (static_cast<double>(lo) + dsp::parabolic_peak_position(band, best)) *
        bin_round_trip_m;
    point.power = band[best];
    point.noise_floor = floor;
    point.extent_m = measure_extent(magnitude, threshold, lo, hi, bin_round_trip_m);
    return point;
}

}  // namespace witrack::core
