// Sweep-to-range transform (paper Section 7): coherently average the
// sweeps_per_frame sweeps of one frame in the time domain (human motion is
// negligible over 12.5 ms, so the body reflection adds coherently while
// noise adds incoherently), window, and FFT. One FFT bin maps to a
// round-trip distance of C / (slope * Tsweep) meters (Eq. 4).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/constants.hpp"
#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace witrack::core {

/// Complex range spectrum of one averaged frame for one antenna.
struct RangeProfile {
    std::vector<dsp::cplx> spectrum;  ///< full FFT, size = samples_per_sweep
    double bin_round_trip_m = 0.0;    ///< round-trip meters per FFT bin
    std::size_t usable_bins = 0;      ///< bins below Nyquist (spectrum.size()/2)

    double round_trip_of_bin(double bin) const { return bin * bin_round_trip_m; }
    double bin_of_round_trip(double m) const { return m / bin_round_trip_m; }
};

class SweepProcessor {
  public:
    /// fft_size 0 = exactly one sweep (paper-literal); larger values
    /// zero-pad for speed and finer bin spacing (same C/2B resolution).
    SweepProcessor(const FmcwParams& fmcw, dsp::WindowType window,
                   std::size_t fft_size = 0);

    /// Average the given sweeps (each samples_per_sweep long) and transform.
    /// Accepts any sweep count >= 1 (the fast-capture path supplies an
    /// already-averaged single sweep).
    RangeProfile process(const std::vector<std::vector<double>>& sweeps) const;

    const FmcwParams& params() const { return fmcw_; }

  private:
    FmcwParams fmcw_;
    std::size_t fft_size_ = 0;
    std::vector<double> window_;
};

}  // namespace witrack::core
