// Sweep-to-range transform (paper Section 7): coherently average the
// sweeps_per_frame sweeps of one frame in the time domain (human motion is
// negligible over 12.5 ms, so the body reflection adds coherently while
// noise adds incoherently), window, and FFT. One FFT bin maps to a
// round-trip distance of C / (slope * Tsweep) meters (Eq. 4).
//
// The hot path is fused: the first sweep assigns the (scaled) averaging
// buffer, later sweeps accumulate into it, and the window is applied during
// the r2c packing pass inside RealFft -- there is no zero-fill pass and no
// separate window pass, and the zero-padded tail of the transform never
// exists in memory (the pruned FFT plan knows it is structurally zero).
//
// The processor owns its averaging buffer, its FFT plan and the FFT scratch
// space, so the steady-state `process_into` / `process_frame_into` paths do
// zero heap allocations per frame.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/constants.hpp"
#include "common/frame_buffer.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_batch.hpp"
#include "dsp/fft_plan_cache.hpp"
#include "dsp/window.hpp"

namespace witrack::core {

/// Complex range spectrum of one averaged frame for one antenna. The
/// input sweep is real, so only the non-redundant half spectrum is
/// materialized: the planes hold usable_bins + 1 bins (DC through Nyquist
/// inclusive); the upper half would be their conjugate mirror and is never
/// computed. The spectrum is stored as structure-of-arrays re/im planes
/// (always equal length) so the SIMD analysis tail -- background
/// subtraction, magnitude scans -- streams each component with unit
/// stride; bin k as a complex value is `bin(k)`.
struct RangeProfile {
    std::vector<double> re;         ///< r2c half spectrum, real plane
    std::vector<double> im;         ///< r2c half spectrum, imaginary plane
    double bin_round_trip_m = 0.0;  ///< round-trip meters per FFT bin
    std::size_t usable_bins = 0;    ///< bins below Nyquist (fft_size/2)

    /// Bins materialized: usable_bins + 1 once transformed, 0 before.
    std::size_t spectrum_size() const { return re.size(); }
    dsp::cplx bin(std::size_t k) const { return dsp::cplx(re[k], im[k]); }

    double round_trip_of_bin(double bin) const { return bin * bin_round_trip_m; }
    double bin_of_round_trip(double m) const { return m / bin_round_trip_m; }
};

/// Not const-callable and not thread-safe: both entry points reuse the
/// owned averaging buffer and FFT scratch. Use one SweepProcessor per
/// thread; the FFT *plan* itself is immutable and shared through an
/// FftPlanCache, so any number of processors (lanes, sessions) transform
/// with one set of twiddle tables.
class SweepProcessor {
  public:
    /// fft_size 0 = exactly one sweep (paper-literal); larger values
    /// zero-pad for speed and finer bin spacing (same C/2B resolution).
    /// `plans` selects the plan cache (nullptr = the process-global one).
    SweepProcessor(const FmcwParams& fmcw, dsp::WindowType window,
                   std::size_t fft_size = 0, dsp::FftPlanCache* plans = nullptr);

    /// Average and transform `sweep_count` back-to-back sweeps of
    /// samples_per_sweep() doubles (e.g. FrameBuffer::antenna), writing into
    /// `out` and reusing its storage -- no heap allocation at steady state.
    /// Accepts any sweep count >= 1 (the fast-capture path supplies an
    /// already-averaged single sweep).
    void process_into(std::span<const double> sweeps, std::size_t sweep_count,
                      RangeProfile& out);

    /// Batch the per-antenna range transforms of one frame in a single pass.
    /// `out` is resized to frame.num_rx(); profile storage is reused.
    void process_frame_into(const FrameBuffer& frame, std::vector<RangeProfile>& out);

    /// Split-step form of process_into for batched execution: run the
    /// averaging now, *stage* the windowed transform into `batch` instead
    /// of executing it, and fill the profile metadata via
    /// finalize_profile() once the caller has run the batch. The staged
    /// operands are the processor's averaging buffer and `out`'s re/im
    /// planes, so this processor must not stage or process again -- and `out` must
    /// stay alive -- until the batch has run. Batched results are
    /// bit-identical to process_into.
    void stage_into(std::span<const double> sweeps, std::size_t sweep_count,
                    RangeProfile& out, dsp::FftBatch& batch);

    /// Fill the non-spectrum fields of a profile whose transform was staged
    /// by stage_into (the spectrum itself was written when the batch ran).
    void finalize_profile(RangeProfile& out) const;

    const FmcwParams& params() const { return fmcw_; }
    std::size_t fft_size() const { return fft_size_; }

    /// The shared immutable plan this processor transforms with. Two
    /// processors built against the same cache and size report the same
    /// pointer -- the observable proof that the tables are not duplicated.
    const dsp::RealFft* plan() const { return rfft_.get(); }

  private:
    /// FFT the averaged sweep in averaged_ into `out` (window fused into
    /// the transform's packing pass).
    void transform(RangeProfile& out);

    /// Coherently average `sweep_count` sweeps into averaged_ (fused
    /// scale-assign on the first sweep, accumulate on the rest).
    void average(std::span<const double> sweeps, std::size_t sweep_count);

    FmcwParams fmcw_;
    std::size_t fft_size_ = 0;
    std::vector<double> window_;
    std::vector<double> averaged_;  ///< samples_per_sweep doubles (no pad)
    std::shared_ptr<const dsp::RealFft> rfft_;  ///< shared via FftPlanCache,
                                                ///< pruned to the sweep length
    dsp::FftScratch scratch_;
};

/// A bank of identically-configured SweepProcessors, one per concurrency
/// lane: the unit of the engine's per-RX fan-out. Since a SweepProcessor
/// owns its averaging buffer and FFT scratch it cannot be shared across
/// threads, so parallel per-antenna processing uses lane(rx) per worker;
/// identical construction makes every lane's arithmetic -- and therefore
/// the parallel output -- bit-identical to lane 0 running alone.
class SweepProcessorBank {
  public:
    /// `plans` is threaded through to every lane (nullptr = the global
    /// cache), so all lanes of all banks share one plan per size.
    SweepProcessorBank(const FmcwParams& fmcw, dsp::WindowType window,
                       std::size_t fft_size = 0, std::size_t lanes = 1,
                       dsp::FftPlanCache* plans = nullptr);

    SweepProcessor& lane(std::size_t i) { return lanes_[i]; }
    const SweepProcessor& lane(std::size_t i) const { return lanes_[i]; }
    std::size_t lanes() const { return lanes_.size(); }

    /// Grow the bank to at least `count` lanes (never shrinks).
    void ensure_lanes(std::size_t count);

    /// Stage every per-antenna transform of one frame into `batch`, one
    /// lane per antenna (growing the bank as needed): the time-domain
    /// averaging runs now; the range FFTs execute when the caller runs the
    /// batch -- all antennas of this frame, plus whatever else was staged
    /// (other sessions' frames), in one lane-interleaved pass. Call
    /// finalize_frame() after the batch has run.
    void stage_frame(const FrameBuffer& frame, std::vector<RangeProfile>& out,
                     dsp::FftBatch& batch);

    /// Complete the profiles staged by stage_frame once the batch has run.
    void finalize_frame(std::vector<RangeProfile>& out);

    const FmcwParams& params() const { return lanes_.front().params(); }

  private:
    FmcwParams fmcw_;
    dsp::WindowType window_;
    std::size_t fft_size_;
    dsp::FftPlanCache* plans_;
    std::vector<SweepProcessor> lanes_;
};

}  // namespace witrack::core
