#include "core/tracker.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/serialize.hpp"

namespace witrack::core {

namespace {

void save_track(common::StateWriter& writer, const std::vector<TrackPoint>& track) {
    writer.u64(track.size());
    for (const auto& point : track) save_state(writer, point);
}

void load_track(common::StateReader& reader, std::vector<TrackPoint>& track) {
    track.resize(reader.count(sizeof(double)));
    for (auto& point : track) load_state(reader, point);
}

}  // namespace

WiTrackTracker::WiTrackTracker(const PipelineConfig& config,
                               const geom::ArrayGeometry& array,
                               dsp::FftPlanCache* plans)
    : config_(config),
      tof_step_(config, array.rx.size(), plans),
      localize_step_(array, config),
      smooth_step_(config) {}

const WiTrackTracker::FrameResult& WiTrackTracker::process_frame(
    const FrameBuffer& frame, double time_s, PipelineOutputs demanded) {
    const auto t0 = std::chrono::steady_clock::now();
    demanded = with_dependencies(demanded);

    // A step re-demanded after undemanded frames (e.g. a subscriber
    // returned) restarts from clean state rather than resuming from a
    // stale one: the TOF chain would otherwise background-subtract a
    // minutes-old profile and gate around a stale denoiser track, and the
    // position filter would extrapolate stale velocity across the whole
    // gap. Resets are no-ops on fresh state, so a stable demand set
    // (including frame 0) is bit-identical to before.
    if (demands(demanded, PipelineOutputs::kTof) &&
        !demands(prev_demanded_, PipelineOutputs::kTof))
        tof_step_.reset();
    if (demands(demanded, PipelineOutputs::kSmoothedTrack) &&
        !demands(prev_demanded_, PipelineOutputs::kSmoothedTrack))
        smooth_step_.reset();
    prev_demanded_ = demanded;

    // result_ is persistent: reset the fields this frame may not write
    // (clear() and copy-assign below reuse capacity -- no allocations).
    result_.computed = demanded;
    result_.raw.reset();
    result_.smoothed.reset();

    const double health = frame.quality().health;

    if (demands(demanded, PipelineOutputs::kTof)) {
        tof_step_.run(frame, time_s, result_.tof);
    } else {
        result_.tof.time_s = 0.0;
        result_.tof.antennas.clear();
    }

    if (demands(demanded, PipelineOutputs::kRawPosition)) {
        ScopedStepTimer timer(localize_steps_);
        result_.raw = localize_step_.run(result_.tof);
        if (result_.raw) {
            raw_track_.push_back(*result_.raw);
            trim_history(raw_track_);
        }
    }

    if (demands(demanded, PipelineOutputs::kSmoothedTrack)) {
        ScopedStepTimer timer(smooth_steps_);
        result_.smoothed = smooth_step_.run(result_.raw, time_s, health);
        if (result_.smoothed) {
            track_.push_back(*result_.smoothed);
            trim_history(track_);
        }
    }

    // Confidence: the hardware health of this frame, zeroed when
    // localization was demanded but could not produce a fix at all.
    result_.confidence =
        demands(demanded, PipelineOutputs::kRawPosition) && !result_.raw
            ? 0.0
            : health;

    const auto t1 = std::chrono::steady_clock::now();
    result_.processing_seconds = std::chrono::duration<double>(t1 - t0).count();
    total_latency_s_ += result_.processing_seconds;
    max_latency_s_ = std::max(max_latency_s_, result_.processing_seconds);
    ++frames_;
    return result_;
}

void WiTrackTracker::stage_frame(const FrameBuffer& frame, double time_s,
                                 PipelineOutputs demanded,
                                 dsp::FftBatch& batch) {
    const auto t0 = std::chrono::steady_clock::now();
    demanded = with_dependencies(demanded);

    // Same demand-gap resets, in the same order, as process_frame.
    if (demands(demanded, PipelineOutputs::kTof) &&
        !demands(prev_demanded_, PipelineOutputs::kTof))
        tof_step_.reset();
    if (demands(demanded, PipelineOutputs::kSmoothedTrack) &&
        !demands(prev_demanded_, PipelineOutputs::kSmoothedTrack))
        smooth_step_.reset();
    prev_demanded_ = demanded;

    staged_demanded_ = demanded;
    staged_time_s_ = time_s;
    staged_health_ = frame.quality().health;
    if (demands(demanded, PipelineOutputs::kTof))
        tof_step_.estimator().stage_frame(frame, time_s, batch);

    const auto t1 = std::chrono::steady_clock::now();
    staged_elapsed_s_ = std::chrono::duration<double>(t1 - t0).count();
}

const WiTrackTracker::FrameResult& WiTrackTracker::finish_frame() {
    // Mirrors the post-TOF tail of process_frame exactly; only the range
    // FFTs ran elsewhere (in the shared batch pass).
    const auto t0 = std::chrono::steady_clock::now();
    result_.computed = staged_demanded_;
    result_.raw.reset();
    result_.smoothed.reset();

    if (demands(staged_demanded_, PipelineOutputs::kTof)) {
        result_.tof = tof_step_.estimator().finish_frame();
    } else {
        result_.tof.time_s = 0.0;
        result_.tof.antennas.clear();
    }

    if (demands(staged_demanded_, PipelineOutputs::kRawPosition)) {
        ScopedStepTimer timer(localize_steps_);
        result_.raw = localize_step_.run(result_.tof);
        if (result_.raw) {
            raw_track_.push_back(*result_.raw);
            trim_history(raw_track_);
        }
    }

    if (demands(staged_demanded_, PipelineOutputs::kSmoothedTrack)) {
        ScopedStepTimer timer(smooth_steps_);
        result_.smoothed =
            smooth_step_.run(result_.raw, staged_time_s_, staged_health_);
        if (result_.smoothed) {
            track_.push_back(*result_.smoothed);
            trim_history(track_);
        }
    }

    // Same confidence rule as process_frame (split-step parity).
    result_.confidence =
        demands(staged_demanded_, PipelineOutputs::kRawPosition) && !result_.raw
            ? 0.0
            : staged_health_;

    const auto t1 = std::chrono::steady_clock::now();
    result_.processing_seconds =
        staged_elapsed_s_ + std::chrono::duration<double>(t1 - t0).count();
    total_latency_s_ += result_.processing_seconds;
    max_latency_s_ = std::max(max_latency_s_, result_.processing_seconds);
    ++frames_;
    return result_;
}

void WiTrackTracker::trim_history(std::vector<TrackPoint>& track) {
    // Trim only once the history doubles the cap, so each erase moves cap
    // elements after cap insertions: amortized O(1) per frame.
    const std::size_t cap = config_.max_track_history;
    if (cap == 0 || track.size() < 2 * cap) return;
    track.erase(track.begin(),
                track.begin() + static_cast<std::ptrdiff_t>(track.size() - cap));
}

double WiTrackTracker::mean_latency_s() const {
    return frames_ > 0 ? total_latency_s_ / static_cast<double>(frames_) : 0.0;
}

void WiTrackTracker::reset() {
    tof_step_.reset();
    smooth_step_.reset();
    prev_demanded_ = PipelineOutputs::kNone;
    track_.clear();
    raw_track_.clear();
    total_latency_s_ = 0.0;
    max_latency_s_ = 0.0;
    frames_ = 0;
}

void WiTrackTracker::save_state(common::StateWriter& writer) const {
    // prev_demanded_ is part of the state: restoring it suppresses the
    // demand-gap reset on the first post-restore frame, so a stable demand
    // set resumes exactly where the snapshot left off.
    writer.u8(static_cast<std::uint8_t>(prev_demanded_));
    writer.u64(frames_);
    writer.f64(total_latency_s_);
    writer.f64(max_latency_s_);
    save_track(writer, track_);
    save_track(writer, raw_track_);
    tof_step_.save_state(writer);
    smooth_step_.save_state(writer);
}

void WiTrackTracker::load_state(common::StateReader& reader) {
    const auto demanded = reader.u8();
    if (demanded & ~static_cast<std::uint8_t>(PipelineOutputs::kAll))
        throw std::runtime_error("WiTrackTracker: corrupt demand set in snapshot");
    prev_demanded_ = static_cast<PipelineOutputs>(demanded);
    frames_ = static_cast<std::size_t>(reader.u64());
    total_latency_s_ = reader.f64();
    max_latency_s_ = reader.f64();
    load_track(reader, track_);
    load_track(reader, raw_track_);
    tof_step_.load_state(reader);
    smooth_step_.load_state(reader);
}

}  // namespace witrack::core
