#include "core/tracker.hpp"

#include <algorithm>
#include <chrono>

namespace witrack::core {

WiTrackTracker::WiTrackTracker(const PipelineConfig& config,
                               const geom::ArrayGeometry& array)
    : config_(config),
      tof_(config, array.rx.size()),
      localizer_(array, config),
      position_filter_(config.position_process_noise,
                       config.position_measurement_noise) {}

WiTrackTracker::FrameResult WiTrackTracker::process_frame(const FrameBuffer& frame,
                                                          double time_s) {
    const auto t0 = std::chrono::steady_clock::now();

    FrameResult result;
    result.tof = tof_.process_frame(frame, time_s);
    result.raw = localizer_.locate(result.tof);

    const double dt = have_last_time_ ? (time_s - last_time_s_)
                                      : config_.fmcw.frame_duration_s();
    last_time_s_ = time_s;
    have_last_time_ = true;

    if (result.raw) {
        raw_track_.push_back(*result.raw);
        const auto smoothed = position_filter_.update(
            {result.raw->position.x, result.raw->position.y, result.raw->position.z}, dt);
        TrackPoint point = *result.raw;
        point.position = {smoothed.x, smoothed.y, smoothed.z};
        result.smoothed = point;
        track_.push_back(point);
        trim_history(raw_track_);
        trim_history(track_);
    }

    const auto t1 = std::chrono::steady_clock::now();
    result.processing_seconds = std::chrono::duration<double>(t1 - t0).count();
    total_latency_s_ += result.processing_seconds;
    max_latency_s_ = std::max(max_latency_s_, result.processing_seconds);
    ++frames_;
    return result;
}

void WiTrackTracker::trim_history(std::vector<TrackPoint>& track) {
    // Trim only once the history doubles the cap, so each erase moves cap
    // elements after cap insertions: amortized O(1) per frame.
    const std::size_t cap = config_.max_track_history;
    if (cap == 0 || track.size() < 2 * cap) return;
    track.erase(track.begin(),
                track.begin() + static_cast<std::ptrdiff_t>(track.size() - cap));
}

double WiTrackTracker::mean_latency_s() const {
    return frames_ > 0 ? total_latency_s_ / static_cast<double>(frames_) : 0.0;
}

void WiTrackTracker::reset() {
    tof_.reset();
    position_filter_.reset();
    track_.clear();
    raw_track_.clear();
    total_latency_s_ = 0.0;
    max_latency_s_ = 0.0;
    frames_ = 0;
    have_last_time_ = false;
}

}  // namespace witrack::core
