// WiTrack facade: the full realtime pipeline of paper Section 7 -- TOF
// estimation per antenna, 3D localization, and position smoothing -- plus
// per-frame processing-latency accounting (the paper reports < 75 ms from
// signal reception to 3D output).
#pragma once

#include <optional>
#include <vector>

#include "common/frame_buffer.hpp"
#include "core/localize.hpp"
#include "core/params.hpp"
#include "core/tof.hpp"
#include "dsp/kalman.hpp"
#include "geom/array_geometry.hpp"

namespace witrack::core {

class WiTrackTracker {
  public:
    WiTrackTracker(const PipelineConfig& config, const geom::ArrayGeometry& array);

    struct FrameResult {
        TofFrame tof;                       ///< per-antenna observations
        std::optional<TrackPoint> raw;      ///< unsmoothed solver output
        std::optional<TrackPoint> smoothed; ///< Kalman-smoothed 3D position
        double processing_seconds = 0.0;    ///< wall-clock pipeline latency
    };

    /// Process one frame of sweeps (contiguous rx-major storage). This is
    /// the realtime hot path; FrameBuffer is the only ingestion type.
    FrameResult process_frame(const FrameBuffer& frame, double time_s);

    /// All smoothed track points so far (bounded by
    /// PipelineConfig::max_track_history when a cap is set).
    const std::vector<TrackPoint>& track() const { return track_; }

    /// Unsmoothed per-frame solver outputs. Fast transients (a fall takes
    /// ~0.4 s) survive here; the smoothed track trades them for lower noise.
    const std::vector<TrackPoint>& raw_track() const { return raw_track_; }

    /// Mean / max processing latency per frame [s].
    double mean_latency_s() const;
    double max_latency_s() const { return max_latency_s_; }
    std::size_t frames_processed() const { return frames_; }

    TofEstimator& tof_estimator() { return tof_; }
    const Localizer& localizer() const { return localizer_; }

    void reset();

  private:
    /// Enforce max_track_history with amortized O(1) block trimming.
    void trim_history(std::vector<TrackPoint>& track);

    PipelineConfig config_;
    TofEstimator tof_;
    Localizer localizer_;
    dsp::PositionKalman position_filter_;
    std::vector<TrackPoint> track_;
    std::vector<TrackPoint> raw_track_;
    double total_latency_s_ = 0.0;
    double max_latency_s_ = 0.0;
    std::size_t frames_ = 0;
    double last_time_s_ = 0.0;
    bool have_last_time_ = false;
};

}  // namespace witrack::core
