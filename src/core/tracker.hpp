// WiTrack facade: the full realtime pipeline of paper Section 7 composed
// from the demand-schedulable steps (TofStep -> LocalizeStep -> SmoothStep)
// plus per-frame processing-latency accounting (the paper reports < 75 ms
// from signal reception to 3D output). Callers that only need part of the
// chain pass a PipelineOutputs demand set and the undemanded steps are
// skipped entirely -- a TOF-only consumer never pays for the ellipsoid
// solve or the Kalman smoothing.
#pragma once

#include <optional>
#include <vector>

#include "common/frame_buffer.hpp"
#include "core/localize.hpp"
#include "core/params.hpp"
#include "core/pipeline_steps.hpp"
#include "core/tof.hpp"
#include "geom/array_geometry.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::core {

class WiTrackTracker {
  public:
    /// `plans` selects the FFT plan cache for the TOF step's range
    /// transforms (nullptr = the process-global FftPlanCache): trackers of
    /// many concurrent sessions share one set of immutable plan tables.
    WiTrackTracker(const PipelineConfig& config, const geom::ArrayGeometry& array,
                   dsp::FftPlanCache* plans = nullptr);

    struct FrameResult {
        TofFrame tof;                       ///< per-antenna observations
        std::optional<TrackPoint> raw;      ///< unsmoothed solver output
        std::optional<TrackPoint> smoothed; ///< Kalman-smoothed 3D position
        double processing_seconds = 0.0;    ///< wall-clock pipeline latency
        PipelineOutputs computed = PipelineOutputs::kNone;  ///< steps that ran
        /// Track confidence for this frame: the frame's hardware health
        /// score, zeroed when localization was demanded but produced no
        /// fix. 1.0 on every pristine frame, dips while faults are active
        /// and recovers with the hardware.
        double confidence = 1.0;
    };

    /// Process one frame of sweeps (contiguous rx-major storage) through the
    /// full chain. This is the realtime hot path; FrameBuffer is the only
    /// ingestion type. The returned result is a persistent member reused
    /// every frame (capacity-reusing, so the steady state is
    /// allocation-free) -- copy it or consume it before the next frame.
    const FrameResult& process_frame(const FrameBuffer& frame, double time_s) {
        return process_frame(frame, time_s, PipelineOutputs::kAll);
    }

    /// Demand-driven variant: run only the steps needed to produce
    /// `demanded` (closed over dependencies -- demanding the smoothed track
    /// implies localization and TOF). Undemanded FrameResult fields are left
    /// empty and undemanded stateful steps do not advance; re-demanding the
    /// smoothed track after a gap restarts the position filter (no stale
    /// cross-gap extrapolation), so the smoothing session begins fresh.
    const FrameResult& process_frame(const FrameBuffer& frame, double time_s,
                                     PipelineOutputs demanded);

    /// Split-step form of process_frame for batched FFT execution: run the
    /// demand bookkeeping and stage the TOF step's range FFTs into `batch`
    /// now; after the caller runs the batch, finish_frame() completes the
    /// chain and returns the result -- bit-identical to process_frame.
    /// Exactly one finish_frame must follow each stage_frame, with the
    /// batch run in between. processing_seconds covers this tracker's own
    /// stage + finish work; the shared batch pass is accounted by the
    /// scheduler that ran it.
    void stage_frame(const FrameBuffer& frame, double time_s,
                     PipelineOutputs demanded, dsp::FftBatch& batch);
    const FrameResult& finish_frame();

    /// Per-pipeline-step cycle counters (Section 4 chain: fft, subtract,
    /// contour, denoise from the TOF estimator; localize and smooth from
    /// this tracker). take_step_stats() returns and resets the window.
    struct PipelineStepStats {
        TofEstimator::StepStats tof;
        StepCounter localize;
        StepCounter smooth;
    };
    PipelineStepStats take_step_stats() {
        PipelineStepStats stats;
        stats.tof = tof_step_.estimator().take_step_stats();
        stats.localize = localize_steps_;
        stats.smooth = smooth_steps_;
        localize_steps_.reset();
        smooth_steps_.reset();
        return stats;
    }

    /// Fan the per-antenna TOF chains out across `pool` (nullptr = serial).
    /// Parallel output is bit-identical to serial; the pool is borrowed and
    /// must outlive the tracker.
    void set_worker_pool(common::WorkerPool* pool) {
        tof_step_.set_worker_pool(pool);
    }

    /// All smoothed track points so far (bounded by
    /// PipelineConfig::max_track_history when a cap is set).
    const std::vector<TrackPoint>& track() const { return track_; }

    /// Unsmoothed per-frame solver outputs. Fast transients (a fall takes
    /// ~0.4 s) survive here; the smoothed track trades them for lower noise.
    const std::vector<TrackPoint>& raw_track() const { return raw_track_; }

    /// Mean / max processing latency per frame [s].
    double mean_latency_s() const;
    double max_latency_s() const { return max_latency_s_; }
    std::size_t frames_processed() const { return frames_; }

    TofEstimator& tof_estimator() { return tof_step_.estimator(); }
    const Localizer& localizer() const { return localize_step_.localizer(); }

    void reset();

    /// Serialize the full tracker state: demand bookkeeping, track
    /// histories, latency accounting, and every step's mutable state.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    /// Enforce max_track_history with amortized O(1) block trimming.
    void trim_history(std::vector<TrackPoint>& track);

    PipelineConfig config_;
    TofStep tof_step_;
    LocalizeStep localize_step_;
    SmoothStep smooth_step_;
    PipelineOutputs prev_demanded_ = PipelineOutputs::kNone;
    // Transient split-step state, valid between stage_frame and its
    // finish_frame (not serialized: snapshots happen at frame boundaries).
    PipelineOutputs staged_demanded_ = PipelineOutputs::kNone;
    double staged_time_s_ = 0.0;
    double staged_elapsed_s_ = 0.0;
    double staged_health_ = 1.0;  ///< quality score of the staged frame
    FrameResult result_;  ///< persistent per-frame result, reused every frame
    StepCounter localize_steps_, smooth_steps_;
    std::vector<TrackPoint> track_;
    std::vector<TrackPoint> raw_track_;
    double total_latency_s_ = 0.0;
    double max_latency_s_ = 0.0;
    std::size_t frames_ = 0;
};

}  // namespace witrack::core
