#include "core/pipeline_steps.hpp"

#include <algorithm>
#include <cmath>

#include "common/serialize.hpp"

namespace witrack::core {

std::string to_string(PipelineOutputs v) {
    std::string out;
    const auto append = [&out](const char* name) {
        if (!out.empty()) out += '|';
        out += name;
    };
    if (any(v & PipelineOutputs::kTof)) append("tof");
    if (any(v & PipelineOutputs::kRawPosition)) append("raw");
    if (any(v & PipelineOutputs::kSmoothedTrack)) append("smoothed");
    return out.empty() ? "none" : out;
}

SmoothStep::SmoothStep(const PipelineConfig& config)
    : filter_(config.position_process_noise, config.position_measurement_noise),
      frame_duration_s_(config.fmcw.frame_duration_s()),
      quality_noise_floor_(config.quality_noise_floor),
      gate_innovation_m_(config.quality_gate_innovation_m) {}

std::optional<TrackPoint> SmoothStep::run(const std::optional<TrackPoint>& raw,
                                          double time_s, double health) {
    const double dt =
        have_last_time_ ? (time_s - last_time_s_) : frame_duration_s_;
    last_time_s_ = time_s;
    have_last_time_ = true;

    if (!raw) return std::nullopt;

    double noise_scale = 1.0;
    if (health < 1.0) {
        noise_scale = 1.0 / std::max(health, quality_noise_floor_);
        if (filter_.initialized() && gate_innovation_m_ > 0.0) {
            // Innovation gate: compare the degraded fix against the
            // constant-velocity prediction. A fix further than the gate is
            // a fault artifact, not human motion -- hold the filter on its
            // prediction for this frame instead of fusing it.
            const auto pos = filter_.position();
            const auto vel = filter_.velocity();
            const double dx = raw->position.x - (pos.x + vel.x * dt);
            const double dy = raw->position.y - (pos.y + vel.y * dt);
            const double dz = raw->position.z - (pos.z + vel.z * dt);
            if (std::sqrt(dx * dx + dy * dy + dz * dz) > gate_innovation_m_) {
                const auto coasted = filter_.predict_only(dt);
                TrackPoint point = *raw;
                point.position = {coasted.x, coasted.y, coasted.z};
                return point;
            }
        }
    }
    const auto smoothed = filter_.update(
        {raw->position.x, raw->position.y, raw->position.z}, dt, noise_scale);
    TrackPoint point = *raw;
    point.position = {smoothed.x, smoothed.y, smoothed.z};
    return point;
}

void SmoothStep::reset() {
    filter_.reset();
    have_last_time_ = false;
}

void SmoothStep::save_state(common::StateWriter& writer) const {
    filter_.save_state(writer);
    writer.f64(last_time_s_);
    writer.boolean(have_last_time_);
}

void SmoothStep::load_state(common::StateReader& reader) {
    filter_.load_state(reader);
    last_time_s_ = reader.f64();
    have_last_time_ = reader.boolean();
}

}  // namespace witrack::core
