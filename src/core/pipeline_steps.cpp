#include "core/pipeline_steps.hpp"

#include "common/serialize.hpp"

namespace witrack::core {

std::string to_string(PipelineOutputs v) {
    std::string out;
    const auto append = [&out](const char* name) {
        if (!out.empty()) out += '|';
        out += name;
    };
    if (any(v & PipelineOutputs::kTof)) append("tof");
    if (any(v & PipelineOutputs::kRawPosition)) append("raw");
    if (any(v & PipelineOutputs::kSmoothedTrack)) append("smoothed");
    return out.empty() ? "none" : out;
}

SmoothStep::SmoothStep(const PipelineConfig& config)
    : filter_(config.position_process_noise, config.position_measurement_noise),
      frame_duration_s_(config.fmcw.frame_duration_s()) {}

std::optional<TrackPoint> SmoothStep::run(const std::optional<TrackPoint>& raw,
                                          double time_s) {
    const double dt =
        have_last_time_ ? (time_s - last_time_s_) : frame_duration_s_;
    last_time_s_ = time_s;
    have_last_time_ = true;

    if (!raw) return std::nullopt;
    const auto smoothed =
        filter_.update({raw->position.x, raw->position.y, raw->position.z}, dt);
    TrackPoint point = *raw;
    point.position = {smoothed.x, smoothed.y, smoothed.z};
    return point;
}

void SmoothStep::reset() {
    filter_.reset();
    have_last_time_ = false;
}

void SmoothStep::save_state(common::StateWriter& writer) const {
    filter_.save_state(writer);
    writer.f64(last_time_s_);
    writer.boolean(have_last_time_);
}

void SmoothStep::load_state(common::StateReader& reader) {
    filter_.load_state(reader);
    last_time_s_ = reader.f64();
    have_last_time_ = reader.boolean();
}

}  // namespace witrack::core
