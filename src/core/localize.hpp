// 3D localization stage (paper Section 5): turn the three (or more)
// denoised round-trip distances into a 3D body-centre position via the
// ellipsoid-intersection solver, then compensate for the body
// surface-to-centre depth the way the paper's VICON comparison does
// (Section 8a).
#pragma once

#include <optional>

#include "core/params.hpp"
#include "core/tof.hpp"
#include "geom/array_geometry.hpp"
#include "geom/solver.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::core {

struct TrackPoint {
    double time_s = 0.0;
    geom::Vec3 position;        ///< estimated body centre (world frame)
    double residual_rms = 0.0;  ///< solver consistency metric [m]
    bool clamped = false;       ///< solver clamped y into the antenna plane
};

/// Value-type serialization for track history (tracker, fall window).
void save_state(common::StateWriter& writer, const TrackPoint& point);
void load_state(common::StateReader& reader, TrackPoint& point);

class Localizer {
  public:
    Localizer(const geom::ArrayGeometry& array, const PipelineConfig& config);

    /// Localize one TOF frame; nullopt until every antenna has a distance.
    /// When the frame's quality plane marked RX lanes dead (hardware
    /// dropout), localization falls back to the valid-antenna subset: the
    /// paper's geometry is over-determined with 4 antennas, so >= 3 live
    /// lanes still fix a 3D position (a temporary sub-array solver, built
    /// only on degraded frames -- the healthy path never pays for it).
    std::optional<TrackPoint> locate(const TofFrame& frame) const;

    /// Localize explicit round-trip distances (used by the pointing
    /// estimator for hand positions; `compensate_depth=false` because a
    /// hand is a point, not an extended body).
    std::optional<TrackPoint> locate_round_trips(const std::vector<double>& round_trips,
                                                 double time_s,
                                                 bool compensate_depth = true) const;

    const geom::EllipsoidSolver& solver() const { return solver_; }

  private:
    /// Shared tail of every locate path: solve on `solver`, then apply the
    /// surface-depth compensation and elevation clamp.
    std::optional<TrackPoint> locate_with(const geom::EllipsoidSolver& solver,
                                          const std::vector<double>& round_trips,
                                          double time_s,
                                          bool compensate_depth) const;

    geom::EllipsoidSolver solver_;
    PipelineConfig config_;
};

}  // namespace witrack::core
