// Fall detection (paper Section 6.2): a fall is a *fast* elevation drop of
// more than one third of the person's standing elevation that ends *near
// the ground*. Checking the final elevation alone cannot separate a fall
// from sitting on the floor; the drop rate disambiguates ("people fall
// quicker than they sit").
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/localize.hpp"

namespace witrack::core {

enum class Activity { kWalk, kSitChair, kSitFloor, kFall };

std::string activity_name(Activity activity);

struct FallDetectorConfig {
    double ground_level_m = 0.45;    ///< final elevation below this = "on the ground"
    double min_drop_fraction = 1.0 / 3.0;  ///< significant elevation change
    double max_fall_duration_s = 0.62;     ///< 15-85% drop time separating fall from sit
    double smoothing_window_s = 0.40;      ///< median-filter window before analysis
};

class FallDetector {
  public:
    explicit FallDetector(FallDetectorConfig config = FallDetectorConfig{})
        : config_(config) {}

    struct Analysis {
        Activity activity = Activity::kWalk;
        double initial_elevation_m = 0.0;
        double final_elevation_m = 0.0;
        double drop_fraction = 0.0;
        double drop_duration_s = 0.0;  ///< 10-90% transition time (0 if no drop)
    };

    /// Offline classification of one recorded episode, as in the paper's
    /// 132-experiment study (the data files were processed offline).
    Analysis analyze(const std::vector<TrackPoint>& track) const;
    Activity classify(const std::vector<TrackPoint>& track) const {
        return analyze(track).activity;
    }

    /// Streaming interface: push smoothed track points; returns an Analysis
    /// once a completed fall is detected (at most once per descent).
    std::optional<Analysis> push(const TrackPoint& point);

    const FallDetectorConfig& config() const { return config_; }

    /// Serialize the streaming state (analysis window, low-state latch).
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    std::vector<double> smoothed_elevations(const std::vector<TrackPoint>& track) const;

    FallDetectorConfig config_;
    std::vector<TrackPoint> window_;  // streaming state
    bool in_low_state_ = false;
    double standing_level_at_alert_ = 0.0;
};

/// Value-type serialization for retained alert history (fall-monitor ring).
void save_state(common::StateWriter& writer, const FallDetector::Analysis& analysis);
void load_state(common::StateReader& reader, FallDetector::Analysis& analysis);

}  // namespace witrack::core
