#include "core/localize.hpp"

#include <algorithm>
#include <cmath>

#include "common/serialize.hpp"

namespace witrack::core {

void save_state(common::StateWriter& writer, const TrackPoint& point) {
    writer.f64(point.time_s);
    writer.vec3(point.position);
    writer.f64(point.residual_rms);
    writer.boolean(point.clamped);
}

void load_state(common::StateReader& reader, TrackPoint& point) {
    point.time_s = reader.f64();
    reader.vec3(point.position);
    point.residual_rms = reader.f64();
    point.clamped = reader.boolean();
}

Localizer::Localizer(const geom::ArrayGeometry& array, const PipelineConfig& config)
    : solver_(array), config_(config) {}

std::optional<TrackPoint> Localizer::locate_round_trips(
    const std::vector<double>& round_trips, double time_s, bool compensate_depth) const {
    return locate_with(solver_, round_trips, time_s, compensate_depth);
}

std::optional<TrackPoint> Localizer::locate_with(
    const geom::EllipsoidSolver& solver, const std::vector<double>& round_trips,
    double time_s, bool compensate_depth) const {
    const auto result = solver.solve(round_trips);
    if (!result.valid) return std::nullopt;

    TrackPoint point;
    point.time_s = time_s;
    point.position = result.position;
    point.residual_rms = result.residual_rms;
    point.clamped = result.clamped;

    if (compensate_depth && config_.surface_depth_m > 0.0) {
        // WiTrack ranges to the body surface facing the device; push the
        // estimate deeper along the horizontal device-to-body direction to
        // obtain the body centre the ground truth reports (Section 8a).
        geom::Vec3 away = point.position - solver.geometry().tx;
        away.z = 0.0;
        if (away.norm() > 1e-6)
            point.position += away.normalized() * config_.surface_depth_m;
    }

    // Elevation sanity: the body centre cannot be below the floor or above
    // standing height plus margin.
    point.position.z = std::clamp(point.position.z, 0.02, 2.6);
    return point;
}

std::optional<TrackPoint> Localizer::locate(const TofFrame& frame) const {
    bool degraded = false;
    for (const auto& antenna : frame.antennas)
        if (!antenna.hw_valid) {
            degraded = true;
            break;
        }
    if (!degraded) {
        // Healthy frame: the exact pre-quality-plane path, bit for bit.
        if (!frame.all_valid()) return std::nullopt;
        return locate_round_trips(frame.round_trips(), frame.time_s, true);
    }

    // Dropout fallback: solve on the live-antenna subset. Mirrors
    // all_valid() over the surviving lanes -- every live lane must have a
    // denoised distance -- and needs >= 3 of them for the ellipsoid
    // intersection to fix a point.
    if (frame.antennas.size() > solver_.geometry().rx.size())
        return std::nullopt;
    std::vector<std::size_t> lanes;
    lanes.reserve(frame.antennas.size());
    for (std::size_t i = 0; i < frame.antennas.size(); ++i) {
        const auto& antenna = frame.antennas[i];
        if (!antenna.hw_valid) continue;
        if (!antenna.denoised_m) return std::nullopt;
        lanes.push_back(i);
    }
    if (lanes.size() < 3) return std::nullopt;

    geom::ArrayGeometry sub = solver_.geometry();
    sub.rx.clear();
    std::vector<double> round_trips;
    round_trips.reserve(lanes.size());
    for (const std::size_t i : lanes) {
        sub.rx.push_back(solver_.geometry().rx[i]);
        round_trips.push_back(*frame.antennas[i].denoised_m);
    }
    const geom::EllipsoidSolver sub_solver(sub);
    return locate_with(sub_solver, round_trips, frame.time_s, true);
}

}  // namespace witrack::core
