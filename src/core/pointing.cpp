#include "core/pointing.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/regression.hpp"

namespace witrack::core {

PointingEstimator::PointingEstimator(const PipelineConfig& pipeline,
                                     const geom::ArrayGeometry& array,
                                     PointingConfig config)
    : config_(config), localizer_(array, pipeline), num_rx_(array.rx.size()) {}

std::vector<PointingEstimator::Burst> PointingEstimator::segment(
    const std::vector<TofFrame>& frames) const {
    std::vector<Burst> bursts;
    // Sentinel instead of std::optional: GCC 12's -Wmaybe-uninitialized
    // fires on the disengaged payload under -O2, and -Werror is kept on.
    constexpr std::size_t kNoBurst = static_cast<std::size_t>(-1);
    std::size_t start = kNoBurst;

    auto close_burst = [&](std::size_t end_index) {
        if (start == kNoBurst) return;
        Burst b;
        b.begin = start;
        b.end = end_index;
        b.t_begin = frames[b.begin].time_s;
        b.t_end = frames[b.end - 1].time_s;
        const double len = b.t_end - b.t_begin;
        if (len >= config_.min_burst_s && len <= config_.max_burst_s)
            bursts.push_back(b);
        start = kNoBurst;
    };

    // A short dropout inside a burst should not split it: tolerate up to
    // two consecutive inactive frames.
    std::size_t inactive_run = 0;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const bool active = frames[i].motion_detected(config_.detection_quorum);
        if (active) {
            if (start == kNoBurst) start = i;
            inactive_run = 0;
        } else if (start != kNoBurst) {
            if (++inactive_run > 2) {
                close_burst(i - inactive_run + 1);
                inactive_run = 0;
            }
        }
    }
    close_burst(frames.size());

    // Merge bursts separated by less than min_gap_s (jitter inside one arm
    // motion).
    std::vector<Burst> merged;
    for (const auto& b : bursts) {
        if (!merged.empty() && b.t_begin - merged.back().t_end < config_.min_gap_s) {
            merged.back().end = b.end;
            merged.back().t_end = b.t_end;
        } else {
            merged.push_back(b);
        }
    }
    return merged;
}

bool PointingEstimator::looks_like_body_part(const std::vector<TofFrame>& frames) const {
    double extent_acc = 0.0;
    std::size_t n = 0;
    for (const auto& f : frames) {
        if (!f.motion_detected(config_.detection_quorum)) continue;
        extent_acc += f.mean_extent_m();
        ++n;
    }
    if (n == 0) return false;
    return extent_acc / static_cast<double>(n) <= config_.max_arm_extent_m;
}

std::optional<std::pair<double, double>> PointingEstimator::regress_antenna(
    const std::vector<TofFrame>& frames, const Burst& burst, std::size_t antenna) const {
    std::vector<double> t, d;
    for (std::size_t i = burst.begin; i < burst.end; ++i) {
        const auto& a = frames[i].antennas[antenna];
        if (!a.contour.detected) continue;
        t.push_back(frames[i].time_s - burst.t_begin);
        d.push_back(a.contour.round_trip_m);
    }
    if (t.size() < 5) return std::nullopt;

    // Robust regression (Section 6.1): the arm contour has occasional
    // multipath outliers; Huber IRLS downweights them.
    const auto fit = dsp::fit_huber(t, d, 1.2);
    if (!fit.valid) return std::nullopt;
    return std::make_pair(fit.at(0.0), fit.at(burst.t_end - burst.t_begin));
}

std::optional<std::pair<geom::Vec3, geom::Vec3>> PointingEstimator::burst_endpoints(
    const std::vector<TofFrame>& frames, const Burst& burst) const {
    std::vector<double> start_rt, end_rt;
    for (std::size_t rx = 0; rx < num_rx_; ++rx) {
        const auto ends = regress_antenna(frames, burst, rx);
        if (!ends) return std::nullopt;
        start_rt.push_back(ends->first);
        end_rt.push_back(ends->second);
    }
    const auto start = localizer_.locate_round_trips(start_rt, burst.t_begin, false);
    const auto end = localizer_.locate_round_trips(end_rt, burst.t_end, false);
    if (!start || !end) return std::nullopt;
    return std::make_pair(start->position, end->position);
}

std::optional<PointingResult> PointingEstimator::analyze(
    const std::vector<TofFrame>& frames) const {
    if (frames.size() < 16) return std::nullopt;
    if (!looks_like_body_part(frames)) return std::nullopt;

    const auto bursts = segment(frames);
    if (bursts.empty()) return std::nullopt;

    // Expect lift + drop; tolerate a single burst (direction from the lift
    // only) but flag it.
    const auto lift = burst_endpoints(frames, bursts.front());
    if (!lift) return std::nullopt;
    geom::Vec3 direction = lift->second - lift->first;

    PointingResult result;
    result.hand_start = lift->first;
    result.hand_end = lift->second;

    if (bursts.size() >= 2) {
        // The drop mirrors the lift: its motion runs extended -> rest, so
        // its negation is a second estimate of the pointing direction.
        const auto drop = burst_endpoints(frames, bursts.back());
        if (drop) {
            const geom::Vec3 drop_dir = drop->first - drop->second;
            if (direction.norm() > 1e-6 && drop_dir.norm() > 1e-6) {
                direction = direction.normalized() + drop_dir.normalized();
                result.used_both_bursts = true;
            }
        }
    }

    if (direction.norm() < 1e-6) return std::nullopt;
    result.direction = direction.normalized();
    result.azimuth_rad = std::atan2(result.direction.x, result.direction.y);
    result.elevation_rad = std::asin(std::clamp(result.direction.z, -1.0, 1.0));

    double extent_acc = 0.0;
    std::size_t n = 0;
    for (const auto& f : frames)
        if (f.motion_detected(config_.detection_quorum)) {
            extent_acc += f.mean_extent_m();
            ++n;
        }
    result.mean_extent_m = n > 0 ? extent_acc / static_cast<double>(n) : 0.0;
    return result;
}

}  // namespace witrack::core
