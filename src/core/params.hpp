// Pipeline configuration for the WiTrack processing chain (paper Sections
// 4, 5, 7). Defaults follow the paper where it is explicit (sweep geometry,
// 5-sweep averaging, 2.5 ms FFT size) and use calibrated values elsewhere.
#pragma once

#include <cstddef>

#include "common/constants.hpp"
#include "dsp/window.hpp"

namespace witrack::core {

struct PipelineConfig {
    FmcwParams fmcw;

    /// Window applied to the averaged sweep before the range FFT.
    dsp::WindowType window = dsp::WindowType::kHann;

    /// Range-FFT length. The paper takes the FFT over exactly one sweep
    /// (2500 samples at 1 MS/s); zero-padding to the next power of two
    /// computes the same spectrum on a finer grid ~4x faster (radix-2
    /// instead of Bluestein) without changing the C/2B resolution.
    /// 0 = match the sweep length exactly (paper-literal mode).
    std::size_t fft_size = 4096;

    /// Contour detection: a local maximum counts as motion when its
    /// magnitude exceeds noise_floor * contour_threshold (paper Section 4.3
    /// "substantially above the noise floor").
    double contour_threshold = 5.0;

    /// Ignore beat frequencies corresponding to round trips outside this
    /// band: below min lies Tx leakage and the front wall flash; above max
    /// only noise (paper Fig. 3 displays up to 30 m).
    double min_round_trip_m = 2.0;
    double max_round_trip_m = 28.0;

    /// Outlier rejection (Section 4.4): the paper rejects contour jumps of
    /// several meters within milliseconds ("a person cannot move much in
    /// 12.5 ms", Fig. 3c shows 5 m jumps removed). Sub-meter frame-to-frame
    /// bounce between body parts (legs vs torso) is real signal that the
    /// Kalman filter absorbs, so the threshold sits between the two scales.
    /// After `reacquire_frames` consecutive rejections the track re-locks.
    double max_contour_jump_m = 1.2;
    double max_speed_mps = 5.0;  ///< used by sanity checks and gating slack
    std::size_t reacquire_frames = 40;
    /// A persistent *closer* contour re-locks much faster: the direct body
    /// path is always the shortest (Section 4.3), so a stable closer echo
    /// means the track was sitting on dynamic multipath.
    std::size_t reacquire_closer_frames = 6;

    /// Gated re-detection (track-before-detect): when the global bottom
    /// contour misses or jumps implausibly while a track exists, re-search
    /// within +/- gate_window_m of the last estimate at gate_relax times
    /// the detection threshold. Follows from the paper's continuity
    /// argument (Section 4.4); disable by setting gate_window_m = 0.
    double gate_window_m = 0.7;
    double gate_relax = 0.75;
    /// Stop gating after this many consecutive gated-only detections so a
    /// genuinely lost track falls back to global reacquisition.
    std::size_t gate_max_streak = 24;

    /// Kalman denoising of each antenna's round-trip stream. Measurement
    /// noise is sized for limb-vs-torso contour bounce, not just FFT-bin
    /// noise, so the filter smooths across body articulation.
    double kalman_process_noise = 1.5;        ///< m/s^2 scale
    double kalman_measurement_noise = 0.15;   ///< m, per-frame round-trip noise

    /// Surface-to-centre depth compensation applied by the localizer
    /// (Section 8a: VICON reports the body centre; WiTrack ranges to the
    /// body surface).
    double surface_depth_m = 0.11;

    /// 3D position smoothing.
    double position_process_noise = 2.0;      ///< m/s^2
    double position_measurement_noise = 0.14; ///< m

    /// Quality-aware smoothing (hw-robustness plane). On frames whose
    /// health score h < 1 the position filter widens its measurement noise
    /// by 1 / max(h, quality_noise_floor) -- degraded fixes pull the state
    /// gently instead of yanking it -- and a measurement whose innovation
    /// (distance from the predicted position) exceeds
    /// quality_gate_innovation_m is rejected outright: the filter coasts
    /// on its velocity for that frame rather than teleporting onto a
    /// fault-corrupted fix. Healthy frames (h == 1) are untouched bit for
    /// bit. Setting quality_gate_innovation_m = 0 disables the gate.
    double quality_noise_floor = 0.25;
    double quality_gate_innovation_m = 0.8;

    /// Keep per-frame subtracted profiles for figures / gesture analysis.
    bool record_profiles = false;

    /// Number of closest local maxima extracted per frame (1 for single-
    /// person tracking; 2+ enables the multi-person extension).
    std::size_t contour_peaks = 1;

    /// Upper bound on the tracker's retained history (smoothed and raw
    /// track points). 0 keeps everything -- right for offline episode
    /// analysis; long-running deployments set a cap so memory stays
    /// bounded. Trimming drops the oldest points in amortized O(1) blocks,
    /// so between trims up to 2x the cap may be briefly retained.
    std::size_t max_track_history = 0;
};

}  // namespace witrack::core
