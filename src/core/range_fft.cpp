#include "core/range_fft.hpp"

#include <stdexcept>

namespace witrack::core {

namespace {

std::size_t checked_fft_size(const FmcwParams& fmcw, std::size_t fft_size) {
    fmcw.validate();
    const std::size_t n = fmcw.samples_per_sweep();
    const std::size_t resolved = fft_size == 0 ? n : fft_size;
    if (resolved < n)
        throw std::invalid_argument("SweepProcessor: fft_size below sweep length");
    return resolved;
}

}  // namespace

SweepProcessor::SweepProcessor(const FmcwParams& fmcw, dsp::WindowType window,
                               std::size_t fft_size, dsp::FftPlanCache* plans)
    : fmcw_(fmcw),
      fft_size_(checked_fft_size(fmcw, fft_size)),
      rfft_((plans != nullptr ? *plans : dsp::FftPlanCache::global())
                .real_plan(fft_size_, fmcw.samples_per_sweep())) {
    const std::size_t n = fmcw_.samples_per_sweep();
    window_ = dsp::make_window(window, n);
    // Normalize to unity coherent gain so thresholds are window-independent.
    const double gain = dsp::window_gain(window_) / static_cast<double>(window_.size());
    for (auto& w : window_) w /= gain;
    // Only the live sweep samples are buffered; the zero-padded tail up to
    // fft_size_ is structural and lives inside the pruned FFT plan.
    averaged_.assign(n, 0.0);
}

void SweepProcessor::transform(RangeProfile& out) {
    rfft_->forward_windowed_soa(averaged_, window_, out.re, out.im, scratch_);
    finalize_profile(out);
}

void SweepProcessor::finalize_profile(RangeProfile& out) const {
    // One FFT bin spans fs/Nfft in beat frequency; Eq. 4 maps that to
    // round-trip meters via C/slope.
    const double bin_hz = fmcw_.sample_rate_hz / static_cast<double>(fft_size_);
    out.bin_round_trip_m = kSpeedOfLight * bin_hz / fmcw_.slope();
    out.usable_bins = fft_size_ / 2;
}

void SweepProcessor::average(std::span<const double> sweeps,
                             std::size_t sweep_count) {
    const std::size_t n = fmcw_.samples_per_sweep();
    if (sweep_count == 0) throw std::invalid_argument("SweepProcessor: no sweeps");
    if (sweeps.size() != sweep_count * n)
        throw std::invalid_argument("SweepProcessor: sweep length mismatch");

    // Fused averaging: the first sweep assigns (no zero-fill pass), the
    // rest accumulate. The window multiply happens inside the transform's
    // packing pass.
    const double scale = 1.0 / static_cast<double>(sweep_count);
    const double* first = sweeps.data();
    for (std::size_t i = 0; i < n; ++i) averaged_[i] = first[i] * scale;
    for (std::size_t s = 1; s < sweep_count; ++s) {
        const double* sweep = sweeps.data() + s * n;
        for (std::size_t i = 0; i < n; ++i) averaged_[i] += sweep[i] * scale;
    }
}

void SweepProcessor::process_into(std::span<const double> sweeps,
                                  std::size_t sweep_count, RangeProfile& out) {
    average(sweeps, sweep_count);
    transform(out);
}

void SweepProcessor::stage_into(std::span<const double> sweeps,
                                std::size_t sweep_count, RangeProfile& out,
                                dsp::FftBatch& batch) {
    average(sweeps, sweep_count);
    batch.enqueue(*rfft_, averaged_, window_, out.re, out.im);
}

void SweepProcessor::process_frame_into(const FrameBuffer& frame,
                                        std::vector<RangeProfile>& out) {
    if (frame.num_rx() == 0 || frame.num_sweeps() == 0)
        throw std::invalid_argument("SweepProcessor: no sweeps");
    out.resize(frame.num_rx());
    for (std::size_t rx = 0; rx < frame.num_rx(); ++rx)
        process_into(frame.antenna(rx), frame.num_sweeps(), out[rx]);
}

SweepProcessorBank::SweepProcessorBank(const FmcwParams& fmcw,
                                       dsp::WindowType window,
                                       std::size_t fft_size, std::size_t lanes,
                                       dsp::FftPlanCache* plans)
    : fmcw_(fmcw), window_(window), fft_size_(fft_size), plans_(plans) {
    ensure_lanes(lanes == 0 ? 1 : lanes);
}

void SweepProcessorBank::ensure_lanes(std::size_t count) {
    lanes_.reserve(count);
    while (lanes_.size() < count)
        lanes_.emplace_back(fmcw_, window_, fft_size_, plans_);
}

void SweepProcessorBank::stage_frame(const FrameBuffer& frame,
                                     std::vector<RangeProfile>& out,
                                     dsp::FftBatch& batch) {
    if (frame.num_rx() == 0 || frame.num_sweeps() == 0)
        throw std::invalid_argument("SweepProcessor: no sweeps");
    out.resize(frame.num_rx());
    // One lane per antenna: each staged transform's averaging buffer is
    // owned by a distinct processor, so all of them can be pending at once.
    ensure_lanes(frame.num_rx());
    for (std::size_t rx = 0; rx < frame.num_rx(); ++rx)
        lane(rx).stage_into(frame.antenna(rx), frame.num_sweeps(), out[rx],
                            batch);
}

void SweepProcessorBank::finalize_frame(std::vector<RangeProfile>& out) {
    for (std::size_t rx = 0; rx < out.size(); ++rx)
        lane(rx).finalize_profile(out[rx]);
}

}  // namespace witrack::core
