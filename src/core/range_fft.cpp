#include "core/range_fft.hpp"

#include <stdexcept>

namespace witrack::core {

SweepProcessor::SweepProcessor(const FmcwParams& fmcw, dsp::WindowType window,
                               std::size_t fft_size)
    : fmcw_(fmcw) {
    fmcw_.validate();
    const std::size_t n = fmcw_.samples_per_sweep();
    fft_size_ = fft_size == 0 ? n : fft_size;
    if (fft_size_ < n)
        throw std::invalid_argument("SweepProcessor: fft_size below sweep length");
    window_ = dsp::make_window(window, n);
    // Normalize to unity coherent gain so thresholds are window-independent.
    const double gain = dsp::window_gain(window_) / static_cast<double>(window_.size());
    for (auto& w : window_) w /= gain;
}

RangeProfile SweepProcessor::process(const std::vector<std::vector<double>>& sweeps) const {
    const std::size_t n = fmcw_.samples_per_sweep();
    if (sweeps.empty()) throw std::invalid_argument("SweepProcessor: no sweeps");
    for (const auto& s : sweeps)
        if (s.size() != n)
            throw std::invalid_argument("SweepProcessor: sweep length mismatch");

    // Coherent time-domain average, windowed, zero-padded to the FFT size.
    std::vector<double> averaged(fft_size_, 0.0);
    const double scale = 1.0 / static_cast<double>(sweeps.size());
    for (const auto& sweep : sweeps)
        for (std::size_t i = 0; i < n; ++i) averaged[i] += sweep[i] * scale;
    for (std::size_t i = 0; i < n; ++i) averaged[i] *= window_[i];

    RangeProfile profile;
    profile.spectrum = dsp::fft_forward_real(averaged);
    // One FFT bin spans fs/Nfft in beat frequency; Eq. 4 maps that to
    // round-trip meters via C/slope.
    const double bin_hz = fmcw_.sample_rate_hz / static_cast<double>(fft_size_);
    profile.bin_round_trip_m = kSpeedOfLight * bin_hz / fmcw_.slope();
    profile.usable_bins = fft_size_ / 2;
    return profile;
}

}  // namespace witrack::core
