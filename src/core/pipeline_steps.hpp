// The paper's realtime chain (Section 7) split into composable steps --
// TofStep (per-antenna range FFT + contour + denoise), LocalizeStep
// (ellipsoid intersection) and SmoothStep (3D Kalman) -- scheduled
// demand-driven: a consumer that only needs TOF observations (multi-person,
// pointing) never pays for localization or smoothing. PipelineOutputs is
// the demand vocabulary shared by the steps, WiTrackTracker and the
// engine's AppStage::required_inputs().
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/frame_buffer.hpp"
#include "core/localize.hpp"
#include "core/params.hpp"
#include "core/tof.hpp"
#include "dsp/kalman.hpp"
#include "geom/array_geometry.hpp"

namespace witrack::common {
class WorkerPool;
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::core {

/// Which pipeline products a consumer demands. Downstream bits imply their
/// upstream dependencies (resolved by with_dependencies): the smoothed
/// track needs a raw position, which needs the TOF observations.
enum class PipelineOutputs : std::uint8_t {
    kNone = 0,
    kTof = 1u << 0,            ///< per-antenna TOF observations
    kRawPosition = 1u << 1,    ///< unsmoothed ellipsoid-solver output
    kSmoothedTrack = 1u << 2,  ///< Kalman-smoothed 3D track
    kAll = kTof | kRawPosition | kSmoothedTrack,
};

constexpr PipelineOutputs operator|(PipelineOutputs a, PipelineOutputs b) {
    return static_cast<PipelineOutputs>(static_cast<std::uint8_t>(a) |
                                        static_cast<std::uint8_t>(b));
}
constexpr PipelineOutputs operator&(PipelineOutputs a, PipelineOutputs b) {
    return static_cast<PipelineOutputs>(static_cast<std::uint8_t>(a) &
                                        static_cast<std::uint8_t>(b));
}
inline PipelineOutputs& operator|=(PipelineOutputs& a, PipelineOutputs b) {
    return a = a | b;
}

constexpr bool any(PipelineOutputs v) { return v != PipelineOutputs::kNone; }

/// True when `set` contains every bit of `bits`.
constexpr bool demands(PipelineOutputs set, PipelineOutputs bits) {
    return (set & bits) == bits;
}

/// Close a demand set over the step dependencies (smoothed -> raw -> TOF).
constexpr PipelineOutputs with_dependencies(PipelineOutputs v) {
    if (any(v & PipelineOutputs::kSmoothedTrack)) v |= PipelineOutputs::kRawPosition;
    if (any(v & PipelineOutputs::kRawPosition)) v |= PipelineOutputs::kTof;
    return v;
}

/// Human-readable demand set, e.g. "tof|raw" ("none" when empty).
std::string to_string(PipelineOutputs v);

/// Step 1: raw sweeps -> per-antenna TOF observations (Section 4 end to
/// end). Owns the TofEstimator; attach a WorkerPool to fan the per-RX
/// FFT/contour/denoise chains out across threads (bit-identical to serial).
class TofStep {
  public:
    /// `plans` is the FFT plan cache shared by the range transforms
    /// (nullptr = process-global), threaded down to the SweepProcessorBank.
    TofStep(const PipelineConfig& config, std::size_t num_rx,
            dsp::FftPlanCache* plans = nullptr)
        : estimator_(config, num_rx, plans) {}

    void run(const FrameBuffer& frame, double time_s, TofFrame& out) {
        out = estimator_.process_frame(frame, time_s);
    }

    void set_worker_pool(common::WorkerPool* pool) {
        estimator_.set_worker_pool(pool);
    }

    TofEstimator& estimator() { return estimator_; }
    const TofEstimator& estimator() const { return estimator_; }

    void reset() { estimator_.reset(); }

    void save_state(common::StateWriter& writer) const {
        estimator_.save_state(writer);
    }
    void load_state(common::StateReader& reader) { estimator_.load_state(reader); }

  private:
    TofEstimator estimator_;
};

/// Step 2: TOF observations -> unsmoothed 3D position (Section 5).
/// Stateless beyond its solver: safe to skip for any number of frames.
class LocalizeStep {
  public:
    LocalizeStep(const geom::ArrayGeometry& array, const PipelineConfig& config)
        : localizer_(array, config) {}

    std::optional<TrackPoint> run(const TofFrame& tof) const {
        return localizer_.locate(tof);
    }

    const Localizer& localizer() const { return localizer_; }

  private:
    Localizer localizer_;
};

/// Step 3: raw positions -> Kalman-smoothed track. Stateful (filter state
/// and inter-frame dt bookkeeping advance only on frames where the step
/// runs), so a session either demands smoothing throughout or not at all.
class SmoothStep {
  public:
    explicit SmoothStep(const PipelineConfig& config);

    /// Advance the dt bookkeeping and, when a raw position is present, fuse
    /// it; must be called on every frame the smoothed track is demanded.
    /// `health` is the frame's quality score (FrameQuality::health): at 1.0
    /// (the default, and every pristine frame) the step is bit-identical
    /// to its pre-quality behavior. Below 1.0 the filter deweights the
    /// measurement (noise widened by 1 / max(health, floor)) and rejects
    /// it outright -- coasting on velocity instead -- when its innovation
    /// exceeds the configured gate, so one fault-corrupted fix cannot
    /// teleport the track.
    std::optional<TrackPoint> run(const std::optional<TrackPoint>& raw,
                                  double time_s, double health = 1.0);

    void reset();

    /// Serialize the filter and the inter-frame dt bookkeeping.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    dsp::PositionKalman filter_;
    double frame_duration_s_;
    double quality_noise_floor_;
    double gate_innovation_m_;
    double last_time_s_ = 0.0;
    bool have_last_time_ = false;
};

}  // namespace witrack::core
