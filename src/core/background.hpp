// Background subtraction (paper Section 4.2). Static reflectors -- walls,
// furniture, the "flash effect" -- keep constant TOF, so subtracting the
// previous frame's complex spectrum from the current one cancels them while
// preserving anything that moved.
//
// Two modes:
//  * kFrameDiff (the paper's approach): X_t - X_{t-1}. Removes everything
//    static, including a static person.
//  * kStaticTraining (the paper's Section 10 future-work extension): learn
//    the empty-room spectrum over a training period and subtract that
//    instead, so a static person remains visible.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "core/range_fft.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::core {

enum class BackgroundMode {
    kFrameDiff,
    kStaticTraining,
};

class BackgroundSubtractor {
  public:
    explicit BackgroundSubtractor(BackgroundMode mode = BackgroundMode::kFrameDiff)
        : mode_(mode) {}

    BackgroundMode mode() const { return mode_; }

    /// kStaticTraining: accumulate one empty-scene frame into the learned
    /// background. Call for each training frame before tracking starts.
    void train(const RangeProfile& profile);
    std::size_t training_frames() const { return trained_count_; }

    /// Subtract the background and return the magnitude profile over the
    /// usable bins. Returns an empty vector for the first frame in
    /// kFrameDiff mode (no previous frame yet) or when untrained in
    /// kStaticTraining mode. The magnitude contract is sqrt(re^2 + im^2)
    /// (see dsp/tail_kernels.hpp) -- within ~2.5 ulp of the exact
    /// magnitude, identical across SIMD dispatch levels.
    std::vector<double> subtract(const RangeProfile& profile);

    /// In-place variant: writes the magnitude profile into `out`, reusing
    /// its storage (empty when there is nothing to difference yet). In
    /// kFrameDiff mode the difference, the magnitude and the history
    /// update are fused into one SIMD pass over the half-spectrum planes
    /// -- no per-frame full-vector copy -- and the whole path is
    /// allocation-free at steady state.
    ///
    /// `update_history=false` computes the same magnitudes bit for bit but
    /// leaves the stored history untouched -- how a saturated frame is
    /// subtracted without its clipped spectrum becoming the next frame's
    /// background. In kFrameDiff mode an unprimed subtractor then stays
    /// unprimed (the damaged frame never becomes frame one of the
    /// differencer); kStaticTraining subtraction never mutates history, so
    /// the flag is a no-op there.
    void subtract_into(const RangeProfile& profile, std::vector<double>& out,
                       bool update_history = true);

    void reset();

    /// Serialize the accumulated history (previous spectrum, learned
    /// background, training count). The mode is written too and validated
    /// on load -- restoring into a subtractor built for the other mode is
    /// a wiring error, not a recoverable state.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    // History mirrors RangeProfile's SoA layout (separate re/im planes,
    // always equal length) so the subtract kernels stream every operand
    // with unit stride.
    BackgroundMode mode_;
    std::vector<double> prev_re_, prev_im_;        ///< last frame's spectrum
    std::vector<double> learned_re_, learned_im_;  ///< training-sum spectrum
    std::size_t trained_count_ = 0;
    bool has_previous_ = false;
};

}  // namespace witrack::core
