#include "core/denoise.hpp"

#include <cmath>

#include "common/serialize.hpp"

namespace witrack::core {

TofDenoiser::TofDenoiser(const PipelineConfig& config)
    : config_(config),
      kalman_(config.kalman_process_noise, config.kalman_measurement_noise) {}

void TofDenoiser::accept(double measurement, double dt) {
    last_value_ = kalman_.update(measurement, dt);
    outlier_streak_ = 0;
}

std::optional<double> TofDenoiser::update(const ContourPoint& contour, double dt) {
    if (!contour.detected) {
        // Interpolation (Section 4.4): a static person produces no
        // background-subtracted energy; hold the last estimate.
        outlier_streak_ = 0;
        return last_value_;
    }

    if (!last_value_) {
        accept(contour.round_trip_m, dt);
        return last_value_;
    }

    const double max_jump = config_.max_contour_jump_m;
    const double jump = std::abs(contour.round_trip_m - *last_value_);

    if (jump > max_jump) {
        ++outlier_streak_;
        const bool closer = contour.round_trip_m < *last_value_;
        closer_streak_ = closer ? closer_streak_ + 1 : 0;
        // A stable closer echo means the track was riding dynamic multipath
        // (the direct path is always shortest, Section 4.3): re-lock fast.
        // A farther echo needs much more persistence (lost track).
        const bool relock =
            (closer && closer_streak_ >= config_.reacquire_closer_frames) ||
            outlier_streak_ >= config_.reacquire_frames;
        if (relock) {
            kalman_.reset();
            accept(contour.round_trip_m, dt);
            closer_streak_ = 0;
        }
        return last_value_;
    }

    closer_streak_ = 0;
    accept(contour.round_trip_m, dt);
    return last_value_;
}

void TofDenoiser::reset() {
    kalman_.reset();
    last_value_.reset();
    outlier_streak_ = 0;
    closer_streak_ = 0;
}

void TofDenoiser::save_state(common::StateWriter& writer) const {
    kalman_.save_state(writer);
    writer.boolean(last_value_.has_value());
    writer.f64(last_value_.value_or(0.0));
    writer.u64(outlier_streak_);
    writer.u64(closer_streak_);
}

void TofDenoiser::load_state(common::StateReader& reader) {
    kalman_.load_state(reader);
    const bool have_last = reader.boolean();
    const double last = reader.f64();
    last_value_ = have_last ? std::optional<double>(last) : std::nullopt;
    outlier_streak_ = static_cast<std::size_t>(reader.u64());
    closer_streak_ = static_cast<std::size_t>(reader.u64());
}

}  // namespace witrack::core
