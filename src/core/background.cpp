#include "core/background.hpp"

#include <cmath>
#include <stdexcept>

#include "common/serialize.hpp"

namespace witrack::core {

namespace {

// Complex spectra serialize as interleaved re/im doubles.
void save_spectrum(common::StateWriter& writer, const std::vector<dsp::cplx>& v) {
    writer.u64(v.size());
    for (const auto& z : v) {
        writer.f64(z.real());
        writer.f64(z.imag());
    }
}

void load_spectrum(common::StateReader& reader, std::vector<dsp::cplx>& v) {
    const auto n = reader.count(2 * sizeof(double));
    v.resize(n);
    for (auto& z : v) {
        const double re = reader.f64();
        const double im = reader.f64();
        z = {re, im};
    }
}

}  // namespace

void BackgroundSubtractor::train(const RangeProfile& profile) {
    if (mode_ != BackgroundMode::kStaticTraining)
        throw std::logic_error("BackgroundSubtractor: train() requires kStaticTraining");
    if (learned_sum_.empty()) learned_sum_.assign(profile.spectrum.size(), {0.0, 0.0});
    if (learned_sum_.size() != profile.spectrum.size())
        throw std::invalid_argument("BackgroundSubtractor: spectrum size changed");
    for (std::size_t i = 0; i < learned_sum_.size(); ++i)
        learned_sum_[i] += profile.spectrum[i];
    ++trained_count_;
}

std::vector<double> BackgroundSubtractor::subtract(const RangeProfile& profile) {
    std::vector<double> magnitude;
    subtract_into(profile, magnitude);
    return magnitude;
}

void BackgroundSubtractor::subtract_into(const RangeProfile& profile,
                                         std::vector<double>& out) {
    const std::size_t bins = profile.usable_bins;

    if (mode_ == BackgroundMode::kFrameDiff) {
        if (!has_previous_ || previous_.size() != profile.spectrum.size()) {
            // First frame (or a spectrum-shape change re-primes the
            // differencer). assign() reuses capacity once warm.
            previous_.assign(profile.spectrum.begin(), profile.spectrum.end());
            has_previous_ = true;
            out.clear();  // nothing to difference yet
            return;
        }
        // Fused difference + history update: one pass reads the stored
        // frame and replaces it in place, instead of a subtract pass
        // followed by a full-vector copy of the new spectrum.
        out.resize(bins);
        for (std::size_t i = 0; i < bins; ++i) {
            const dsp::cplx current = profile.spectrum[i];
            out[i] = std::abs(current - previous_[i]);
            previous_[i] = current;
        }
        for (std::size_t i = bins; i < previous_.size(); ++i)
            previous_[i] = profile.spectrum[i];
        return;
    }

    // kStaticTraining
    if (trained_count_ == 0) {
        out.clear();
        return;
    }
    out.resize(bins);
    const double scale = 1.0 / static_cast<double>(trained_count_);
    for (std::size_t i = 0; i < bins; ++i)
        out[i] = std::abs(profile.spectrum[i] - learned_sum_[i] * scale);
}

void BackgroundSubtractor::reset() {
    previous_.clear();
    learned_sum_.clear();
    trained_count_ = 0;
    has_previous_ = false;
}

void BackgroundSubtractor::save_state(common::StateWriter& writer) const {
    writer.u8(static_cast<std::uint8_t>(mode_));
    writer.boolean(has_previous_);
    save_spectrum(writer, previous_);
    save_spectrum(writer, learned_sum_);
    writer.u64(trained_count_);
}

void BackgroundSubtractor::load_state(common::StateReader& reader) {
    const auto mode = static_cast<BackgroundMode>(reader.u8());
    if (mode != mode_)
        throw std::runtime_error("BackgroundSubtractor: snapshot mode mismatch");
    has_previous_ = reader.boolean();
    load_spectrum(reader, previous_);
    load_spectrum(reader, learned_sum_);
    trained_count_ = static_cast<std::size_t>(reader.u64());
}

}  // namespace witrack::core
