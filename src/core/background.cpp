#include "core/background.hpp"

#include <cmath>
#include <stdexcept>

#include "common/serialize.hpp"
#include "dsp/tail_kernels.hpp"

namespace witrack::core {

void BackgroundSubtractor::train(const RangeProfile& profile) {
    if (mode_ != BackgroundMode::kStaticTraining)
        throw std::logic_error("BackgroundSubtractor: train() requires kStaticTraining");
    const std::size_t n = profile.spectrum_size();
    if (learned_re_.empty()) {
        learned_re_.assign(n, 0.0);
        learned_im_.assign(n, 0.0);
    }
    if (learned_re_.size() != n)
        throw std::invalid_argument("BackgroundSubtractor: spectrum size changed");
    for (std::size_t i = 0; i < n; ++i) {
        learned_re_[i] += profile.re[i];
        learned_im_[i] += profile.im[i];
    }
    ++trained_count_;
}

std::vector<double> BackgroundSubtractor::subtract(const RangeProfile& profile) {
    std::vector<double> magnitude;
    subtract_into(profile, magnitude);
    return magnitude;
}

void BackgroundSubtractor::subtract_into(const RangeProfile& profile,
                                         std::vector<double>& out,
                                         bool update_history) {
    const std::size_t bins = profile.usable_bins;
    const std::size_t n = profile.spectrum_size();

    if (mode_ == BackgroundMode::kFrameDiff) {
        if (!has_previous_ || prev_re_.size() != n) {
            if (!update_history) {
                // A quarantined (saturated) frame must not become the
                // differencer's first stored frame either.
                out.clear();
                return;
            }
            // First frame (or a spectrum-shape change re-primes the
            // differencer). assign() reuses capacity once warm.
            prev_re_.assign(profile.re.begin(), profile.re.end());
            prev_im_.assign(profile.im.begin(), profile.im.end());
            has_previous_ = true;
            out.clear();  // nothing to difference yet
            return;
        }
        out.resize(bins);
        if (!update_history) {
            // Read-only difference against the held history: with scale
            // 1.0 the scaled kernel's magnitudes are bit-identical to
            // diff_magnitude's (the *1.0 products are IEEE-exact), and
            // the stored planes stay as they were.
            dsp::tail::scaled_diff_magnitude(profile.re.data(),
                                             profile.im.data(),
                                             prev_re_.data(), prev_im_.data(),
                                             1.0, out.data(), bins);
            return;
        }
        // Fused difference + magnitude + history update: one SIMD pass
        // reads the stored frame and replaces it in place, instead of a
        // subtract pass followed by a full-vector copy of the new spectrum.
        dsp::tail::diff_magnitude(profile.re.data(), profile.im.data(),
                                  prev_re_.data(), prev_im_.data(), out.data(),
                                  bins);
        for (std::size_t i = bins; i < n; ++i) {
            prev_re_[i] = profile.re[i];
            prev_im_[i] = profile.im[i];
        }
        return;
    }

    // kStaticTraining
    if (trained_count_ == 0) {
        out.clear();
        return;
    }
    out.resize(bins);
    const double scale = 1.0 / static_cast<double>(trained_count_);
    dsp::tail::scaled_diff_magnitude(profile.re.data(), profile.im.data(),
                                     learned_re_.data(), learned_im_.data(),
                                     scale, out.data(), bins);
}

void BackgroundSubtractor::reset() {
    prev_re_.clear();
    prev_im_.clear();
    learned_re_.clear();
    learned_im_.clear();
    trained_count_ = 0;
    has_previous_ = false;
}

void BackgroundSubtractor::save_state(common::StateWriter& writer) const {
    writer.u8(static_cast<std::uint8_t>(mode_));
    writer.boolean(has_previous_);
    // Whole-plane framing (snapshot v2): each spectrum plane is one bulk
    // f64_vector record instead of a per-element interleaved loop.
    writer.f64_vector(prev_re_);
    writer.f64_vector(prev_im_);
    writer.f64_vector(learned_re_);
    writer.f64_vector(learned_im_);
    writer.u64(trained_count_);
}

void BackgroundSubtractor::load_state(common::StateReader& reader) {
    const auto mode = static_cast<BackgroundMode>(reader.u8());
    if (mode != mode_)
        throw std::runtime_error("BackgroundSubtractor: snapshot mode mismatch");
    has_previous_ = reader.boolean();
    prev_re_ = reader.f64_vector();
    prev_im_ = reader.f64_vector();
    learned_re_ = reader.f64_vector();
    learned_im_ = reader.f64_vector();
    if (prev_re_.size() != prev_im_.size() ||
        learned_re_.size() != learned_im_.size())
        throw std::runtime_error("BackgroundSubtractor: plane size mismatch");
    trained_count_ = static_cast<std::size_t>(reader.u64());
}

}  // namespace witrack::core
