#include "core/multi.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/serialize.hpp"

namespace witrack::core {

MultiPersonTracker::MultiPersonTracker(const PipelineConfig& config,
                                       const geom::ArrayGeometry& array,
                                       std::size_t max_people)
    : config_(config), localizer_(array, config), max_people_(max_people) {
    for (std::size_t i = 0; i < max_people_; ++i) tracks_.emplace_back(config_);
}

std::vector<TrackPoint> MultiPersonTracker::candidates(const TofFrame& frame,
                                                       double time_s) const {
    // Enumerate one peak choice per antenna (cartesian product, bounded by
    // peaks-per-antenna <= contour_peaks, so at most contour_peaks^3 for a
    // T array).
    std::vector<TrackPoint> result;
    const std::size_t n_rx = frame.antennas.size();
    std::vector<std::size_t> counts(n_rx, 0);
    for (std::size_t rx = 0; rx < n_rx; ++rx) {
        counts[rx] = frame.antennas[rx].peaks.size();
        if (counts[rx] == 0) return result;  // an antenna saw nothing
    }

    std::vector<std::size_t> choice(n_rx, 0);
    while (true) {
        std::vector<double> round_trips(n_rx);
        for (std::size_t rx = 0; rx < n_rx; ++rx)
            round_trips[rx] = frame.antennas[rx].peaks[choice[rx]].round_trip_m;
        if (auto point = localizer_.locate_round_trips(round_trips, time_s, true);
            point && point->residual_rms < 0.6 && std::abs(point->position.x) < 8.0 &&
            point->position.y > 0.5 && point->position.y < 15.0)
            result.push_back(*point);

        // Advance the mixed-radix counter.
        std::size_t rx = 0;
        while (rx < n_rx && ++choice[rx] == counts[rx]) {
            choice[rx] = 0;
            ++rx;
        }
        if (rx == n_rx) break;
    }
    return result;
}

std::vector<MultiPersonTracker::PersonEstimate> MultiPersonTracker::process(
    const TofFrame& frame, double time_s) {
    const double dt = have_time_ ? std::max(1e-4, time_s - last_time_s_)
                                 : config_.fmcw.frame_duration_s();
    last_time_s_ = time_s;
    have_time_ = true;

    auto cands = candidates(frame, time_s);
    std::vector<PersonEstimate> out(tracks_.size());
    std::vector<bool> cand_used(cands.size(), false);

    // Greedy assignment: each initialized track grabs its nearest candidate
    // (within a gate); uninitialized tracks then adopt leftover candidates.
    for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
        auto& track = tracks_[ti];
        if (!track.initialized) continue;
        // Gate against a *copy* of the filter so a missed frame does not
        // advance the state -- otherwise a lost track coasts away at its
        // last velocity forever.
        auto probe = track.filter;
        const auto predicted = probe.predict_only(dt);
        double best_cost = std::numeric_limits<double>::infinity();
        std::size_t best = cands.size();
        for (std::size_t ci = 0; ci < cands.size(); ++ci) {
            if (cand_used[ci]) continue;
            const geom::Vec3 p = cands[ci].position;
            const double cost =
                std::hypot(p.x - predicted.x, p.y - predicted.y, p.z - predicted.z) +
                cands[ci].residual_rms;
            if (cost < best_cost) {
                best_cost = cost;
                best = ci;
            }
        }
        // Continuity gate: a person cannot move more than ~1 m between
        // frames plus noise slack.
        if (best < cands.size() && best_cost < 1.2) {
            cand_used[best] = true;
            const auto& p = cands[best].position;
            const auto filtered = track.filter.update({p.x, p.y, p.z}, dt);
            out[ti] = {{filtered.x, filtered.y, filtered.z}, true};
            track.misses = 0;
        } else {
            const auto held = track.filter.position();
            out[ti] = {{held.x, held.y, held.z}, false};
            // A track that keeps missing has lost its person: release it so
            // it can re-initialize from fresh candidates.
            if (++track.misses > 80) {
                track.filter.reset();
                track.initialized = false;
            }
        }
    }

    for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
        auto& track = tracks_[ti];
        if (track.initialized) continue;
        // Prefer the strongest remaining candidate (lowest residual).
        double best_res = std::numeric_limits<double>::infinity();
        std::size_t best = cands.size();
        for (std::size_t ci = 0; ci < cands.size(); ++ci) {
            if (cand_used[ci]) continue;
            if (cands[ci].residual_rms < best_res) {
                best_res = cands[ci].residual_rms;
                best = ci;
            }
        }
        if (best < cands.size()) {
            cand_used[best] = true;
            const auto& p = cands[best].position;
            track.filter.update({p.x, p.y, p.z}, dt);
            track.initialized = true;
            out[ti] = {p, true};
        }
    }
    return out;
}

void MultiPersonTracker::save_state(common::StateWriter& writer) const {
    writer.u64(tracks_.size());
    for (const auto& track : tracks_) {
        track.filter.save_state(writer);
        writer.boolean(track.initialized);
        writer.u64(track.misses);
    }
    writer.f64(last_time_s_);
    writer.boolean(have_time_);
}

void MultiPersonTracker::load_state(common::StateReader& reader) {
    const auto count = static_cast<std::size_t>(reader.u64());
    if (count != tracks_.size())
        throw std::runtime_error("MultiPersonTracker: snapshot track count mismatch");
    for (auto& track : tracks_) {
        track.filter.load_state(reader);
        track.initialized = reader.boolean();
        track.misses = static_cast<std::size_t>(reader.u64());
    }
    last_time_s_ = reader.f64();
    have_time_ = reader.boolean();
}

}  // namespace witrack::core
