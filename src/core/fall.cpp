#include "core/fall.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/serialize.hpp"
#include "dsp/stats.hpp"

namespace witrack::core {

std::string activity_name(Activity activity) {
    switch (activity) {
        case Activity::kWalk: return "walk";
        case Activity::kSitChair: return "sit-chair";
        case Activity::kSitFloor: return "sit-floor";
        case Activity::kFall: return "fall";
    }
    return "unknown";
}

std::vector<double> FallDetector::smoothed_elevations(
    const std::vector<TrackPoint>& track) const {
    std::vector<double> z(track.size());
    if (track.empty()) return z;

    // Window size from the track's own frame spacing. A *median* filter is
    // used so that isolated solver spikes cannot fake a threshold crossing.
    double dt = 0.0125;
    if (track.size() > 1)
        dt = std::max(1e-4, (track.back().time_s - track.front().time_s) /
                                static_cast<double>(track.size() - 1));
    const auto half = static_cast<std::size_t>(
        std::max(1.0, config_.smoothing_window_s / dt / 2.0));

    std::vector<double> window;
    for (std::size_t i = 0; i < track.size(); ++i) {
        const std::size_t lo = i >= half ? i - half : 0;
        const std::size_t hi = std::min(track.size(), i + half + 1);
        window.clear();
        for (std::size_t j = lo; j < hi; ++j) window.push_back(track[j].position.z);
        z[i] = dsp::median(window);
    }
    return z;
}

FallDetector::Analysis FallDetector::analyze(const std::vector<TrackPoint>& track) const {
    Analysis out;
    if (track.size() < 8) return out;

    const std::vector<double> z = smoothed_elevations(track);

    // Standing level from the pre-descent portion (first 60% of the
    // episode); a 75th percentile resists both noise spikes and the tail.
    std::vector<double> head(z.begin(),
                             z.begin() + static_cast<long>(z.size() * 6 / 10));
    out.initial_elevation_m = dsp::percentile(head, 75.0);
    const double t_end = track.back().time_s;
    std::vector<double> tail;
    for (std::size_t i = 0; i < track.size(); ++i)
        if (track[i].time_s >= t_end - 1.0) tail.push_back(z[i]);
    if (tail.empty()) tail.push_back(z.back());
    out.final_elevation_m = dsp::median(tail);

    out.drop_fraction =
        out.initial_elevation_m > 0.0
            ? (out.initial_elevation_m - out.final_elevation_m) / out.initial_elevation_m
            : 0.0;

    // Condition 1 (Section 6.2): significant elevation change.
    if (out.drop_fraction < config_.min_drop_fraction) {
        out.activity = Activity::kWalk;
        return out;
    }
    // Condition 2: the final elevation must be close to the ground,
    // otherwise the person ended on a chair.
    if (out.final_elevation_m > config_.ground_level_m) {
        out.activity = Activity::kSitChair;
        return out;
    }

    // Condition 3: the change must have happened fast. Measure the 15-85%
    // transition time of the descent with a dwell requirement: the low
    // crossing only counts if the elevation *stays* low for 0.6 s, so a
    // transient dip cannot fake a fast fall.
    const double span = out.initial_elevation_m - out.final_elevation_m;
    const double z_hi = out.initial_elevation_m - 0.15 * span;
    const double z_lo = out.final_elevation_m + 0.15 * span;

    double dt = 0.0125;
    if (track.size() > 1)
        dt = std::max(1e-4, (track.back().time_s - track.front().time_s) /
                                static_cast<double>(track.size() - 1));
    const auto dwell = static_cast<std::size_t>(0.6 / dt);

    std::size_t first_low = track.size();
    for (std::size_t i = 0; i + 1 < track.size(); ++i) {
        if (z[i] > z_lo) continue;
        bool stays_low = true;
        for (std::size_t j = i; j < std::min(track.size(), i + dwell); ++j)
            if (z[j] > z_lo + 0.25 * span) {
                stays_low = false;
                break;
            }
        if (stays_low) {
            first_low = i;
            break;
        }
    }
    std::size_t last_high = 0;
    for (std::size_t i = 0; i < first_low; ++i)
        if (z[i] >= z_hi) last_high = i;

    if (first_low < track.size() && first_low > last_high)
        out.drop_duration_s = track[first_low].time_s - track[last_high].time_s;

    out.activity = (out.drop_duration_s > 0.0 &&
                    out.drop_duration_s <= config_.max_fall_duration_s)
                       ? Activity::kFall
                       : Activity::kSitFloor;
    return out;
}

std::optional<FallDetector::Analysis> FallDetector::push(const TrackPoint& point) {
    window_.push_back(point);
    // Keep a 6-second sliding window.
    while (!window_.empty() && point.time_s - window_.front().time_s > 6.0)
        window_.erase(window_.begin());
    if (window_.size() < 32) return std::nullopt;

    const Analysis analysis = analyze(window_);

    if (in_low_state_) {
        // Re-arm only when the person is clearly back up relative to the
        // standing level recorded when the alert fired (the sliding window's
        // own baseline collapses once it contains only post-fall samples).
        if (point.position.z > 0.75 * standing_level_at_alert_) in_low_state_ = false;
        return std::nullopt;
    }
    if (analysis.activity == Activity::kFall) {
        in_low_state_ = true;
        standing_level_at_alert_ = analysis.initial_elevation_m;
        return analysis;
    }
    return std::nullopt;
}

void FallDetector::save_state(common::StateWriter& writer) const {
    writer.u64(window_.size());
    for (const auto& point : window_) core::save_state(writer, point);
    writer.boolean(in_low_state_);
    writer.f64(standing_level_at_alert_);
}

void FallDetector::load_state(common::StateReader& reader) {
    window_.resize(reader.count(sizeof(double)));
    for (auto& point : window_) core::load_state(reader, point);
    in_low_state_ = reader.boolean();
    standing_level_at_alert_ = reader.f64();
}

void save_state(common::StateWriter& writer, const FallDetector::Analysis& analysis) {
    writer.u8(static_cast<std::uint8_t>(analysis.activity));
    writer.f64(analysis.initial_elevation_m);
    writer.f64(analysis.final_elevation_m);
    writer.f64(analysis.drop_fraction);
    writer.f64(analysis.drop_duration_s);
}

void load_state(common::StateReader& reader, FallDetector::Analysis& analysis) {
    const auto activity = reader.u8();
    if (activity > static_cast<std::uint8_t>(Activity::kFall))
        throw std::runtime_error("FallDetector: corrupt activity in snapshot");
    analysis.activity = static_cast<Activity>(activity);
    analysis.initial_elevation_m = reader.f64();
    analysis.final_elevation_m = reader.f64();
    analysis.drop_fraction = reader.f64();
    analysis.drop_duration_s = reader.f64();
}

}  // namespace witrack::core
