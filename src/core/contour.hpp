// Bottom-contour tracking (paper Section 4.3). Among all strong reflectors
// that survive background subtraction, the direct body reflection has
// travelled the shortest path, so WiTrack tracks the *closest* local
// maximum that is substantially above the noise floor -- not the strongest
// peak, which may be dynamic multipath.
#pragma once

#include <cstddef>
#include <vector>

#include "core/params.hpp"
#include "core/range_fft.hpp"
#include "dsp/peaks.hpp"

namespace witrack::core {

struct ContourPoint {
    bool detected = false;
    double round_trip_m = 0.0;  ///< sub-bin interpolated round-trip distance
    double power = 0.0;         ///< magnitude at the contour peak
    double noise_floor = 0.0;   ///< estimated per-frame noise floor
    /// Power-weighted spread (std dev, meters) of the above-threshold
    /// energy: small for an arm, large for a whole moving body (Section 6.1).
    double extent_m = 0.0;
};

/// Preallocated workspace for one extraction lane (one antenna's contour
/// calls within one frame). Owns every buffer the extraction entry points
/// need -- there are no band copies and no per-call allocations once the
/// buffers are warm -- plus the per-frame noise-floor cache: the first
/// extraction of a frame computes the usable-band floor, and every later
/// call against the same band (the gated re-detection pass in particular)
/// reuses it, so one antenna estimates its floor exactly once per frame.
/// Call start_frame() when a new magnitude profile arrives.
struct ContourScratch {
    std::vector<double> floor_samples;  ///< nth_element workspace
    std::vector<double> candidates;     ///< peak-candidate mask plane
    std::vector<dsp::Peak> peaks;       ///< windowed find_peaks output
    std::vector<ContourPoint> points;   ///< single-point extraction staging

    bool floor_valid = false;
    std::size_t floor_lo = 0, floor_hi = 0;  ///< band the cache covers
    double floor_value = 0.0;

    /// Invalidate the noise-floor cache (new frame / new profile).
    void start_frame() { floor_valid = false; }
};

class ContourTracker {
  public:
    explicit ContourTracker(const PipelineConfig& config) : config_(config) {}

    /// Extract the bottom contour from one subtracted magnitude profile.
    ContourPoint extract(const std::vector<double>& magnitude,
                        double bin_round_trip_m, ContourScratch& scratch) const;

    /// Multi-person extension: the `max_peaks` closest qualifying local
    /// maxima, nearest first, written into `out` (cleared; storage reused).
    void extract_peaks_into(const std::vector<double>& magnitude,
                            double bin_round_trip_m, std::size_t max_peaks,
                            ContourScratch& scratch,
                            std::vector<ContourPoint>& out) const;

    /// The strongest (not closest) peak -- the alternative the paper rejects;
    /// kept for the ablation bench.
    ContourPoint extract_strongest(const std::vector<double>& magnitude,
                                   double bin_round_trip_m,
                                   ContourScratch& scratch) const;

    /// Gated re-detection around a predicted round trip: once a track is
    /// established, a weaker echo near the prediction is still the person
    /// (human motion is continuous, Section 4.4), so the detection
    /// threshold relaxes by `relax` inside +/- window_m of `center_m`.
    /// Reuses the frame's cached noise floor when the scratch already
    /// carries it (the floor always comes from the full usable band).
    ContourPoint extract_near(const std::vector<double>& magnitude,
                              double bin_round_trip_m, double center_m,
                              double window_m, ContourScratch& scratch,
                              double relax = 0.5) const;

    /// Convenience overloads with a private throwaway scratch: identical
    /// results, but each call allocates. Tests and ablation benches only;
    /// the pipeline threads a persistent ContourScratch.
    ContourPoint extract(const std::vector<double>& magnitude,
                         double bin_round_trip_m) const;
    std::vector<ContourPoint> extract_peaks(const std::vector<double>& magnitude,
                                            double bin_round_trip_m,
                                            std::size_t max_peaks) const;
    ContourPoint extract_strongest(const std::vector<double>& magnitude,
                                   double bin_round_trip_m) const;
    ContourPoint extract_near(const std::vector<double>& magnitude,
                              double bin_round_trip_m, double center_m,
                              double window_m, double relax = 0.5) const;

  private:
    double measure_extent(const std::vector<double>& magnitude, double threshold,
                          std::size_t lo, std::size_t hi,
                          double bin_round_trip_m) const;

    PipelineConfig config_;
};

}  // namespace witrack::core
