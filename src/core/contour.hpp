// Bottom-contour tracking (paper Section 4.3). Among all strong reflectors
// that survive background subtraction, the direct body reflection has
// travelled the shortest path, so WiTrack tracks the *closest* local
// maximum that is substantially above the noise floor -- not the strongest
// peak, which may be dynamic multipath.
#pragma once

#include <cstddef>
#include <vector>

#include "core/params.hpp"
#include "core/range_fft.hpp"

namespace witrack::core {

struct ContourPoint {
    bool detected = false;
    double round_trip_m = 0.0;  ///< sub-bin interpolated round-trip distance
    double power = 0.0;         ///< magnitude at the contour peak
    double noise_floor = 0.0;   ///< estimated per-frame noise floor
    /// Power-weighted spread (std dev, meters) of the above-threshold
    /// energy: small for an arm, large for a whole moving body (Section 6.1).
    double extent_m = 0.0;
};

class ContourTracker {
  public:
    explicit ContourTracker(const PipelineConfig& config) : config_(config) {}

    /// Extract the bottom contour from one subtracted magnitude profile.
    ContourPoint extract(const std::vector<double>& magnitude,
                         double bin_round_trip_m) const;

    /// Multi-person extension: the `max_peaks` closest qualifying local
    /// maxima, nearest first.
    std::vector<ContourPoint> extract_peaks(const std::vector<double>& magnitude,
                                            double bin_round_trip_m,
                                            std::size_t max_peaks) const;

    /// The strongest (not closest) peak -- the alternative the paper rejects;
    /// kept for the ablation bench.
    ContourPoint extract_strongest(const std::vector<double>& magnitude,
                                   double bin_round_trip_m) const;

    /// Gated re-detection around a predicted round trip: once a track is
    /// established, a weaker echo near the prediction is still the person
    /// (human motion is continuous, Section 4.4), so the detection
    /// threshold relaxes by `relax` inside +/- window_m of `center_m`.
    ContourPoint extract_near(const std::vector<double>& magnitude,
                              double bin_round_trip_m, double center_m,
                              double window_m, double relax = 0.5) const;

  private:
    double measure_extent(const std::vector<double>& magnitude, double threshold,
                          std::size_t lo, std::size_t hi,
                          double bin_round_trip_m) const;

    PipelineConfig config_;
};

}  // namespace witrack::core
