// Pointing-direction estimation (paper Section 6.1). The user stands still
// and raises an arm toward a target, holds, then drops it. Because the body
// is static, only the arm survives background subtraction; its reflection
// surface is far smaller than a moving body's, which is how WiTrack
// distinguishes a gesture from whole-body motion.
//
// Pipeline: segment the TOF stream into the lift and drop bursts separated
// by silence -> robust-regress each antenna's round-trip distance over each
// burst -> localize the regressed endpoints -> direction = start->end of
// the lift, mirrored by the drop, averaged.
#pragma once

#include <optional>
#include <vector>

#include "core/localize.hpp"
#include "core/params.hpp"
#include "core/tof.hpp"
#include "geom/array_geometry.hpp"

namespace witrack::core {

struct PointingConfig {
    /// Frames with >= this many detecting antennas count as "active".
    std::size_t detection_quorum = 2;
    /// Minimum silence between the lift and drop bursts [s].
    double min_gap_s = 0.35;
    /// Minimum/maximum burst length [s] for a plausible arm motion.
    double min_burst_s = 0.30;
    double max_burst_s = 2.50;
    /// Mean reflection extent above this is a whole-body motion, not an arm
    /// (Section 6.1's variance criterion).
    double max_arm_extent_m = 0.55;
};

struct PointingResult {
    geom::Vec3 direction;        ///< unit pointing direction
    double azimuth_rad = 0.0;    ///< atan2(x, y): 0 = straight ahead (+y)
    double elevation_rad = 0.0;
    geom::Vec3 hand_start;       ///< localized hand rest position
    geom::Vec3 hand_end;         ///< localized extended position
    double mean_extent_m = 0.0;  ///< reflection-extent statistic used to gate
    bool used_both_bursts = false;
};

class PointingEstimator {
  public:
    PointingEstimator(const PipelineConfig& pipeline, const geom::ArrayGeometry& array,
                      PointingConfig config = PointingConfig{});

    /// Analyze a recorded gesture episode (TOF frames from TofEstimator).
    /// Returns nullopt when no valid pointing gesture is found (including
    /// when the motion looks like a whole body rather than an arm).
    std::optional<PointingResult> analyze(const std::vector<TofFrame>& frames) const;

    /// True when the episode's motion has arm-scale reflection extent.
    bool looks_like_body_part(const std::vector<TofFrame>& frames) const;

  private:
    struct Burst {
        std::size_t begin = 0, end = 0;  // frame index range [begin, end)
        double t_begin = 0.0, t_end = 0.0;
    };

    std::vector<Burst> segment(const std::vector<TofFrame>& frames) const;

    /// Regress one antenna's distances across a burst and return the
    /// (start, end) round trips, or nullopt if too few detections.
    std::optional<std::pair<double, double>> regress_antenna(
        const std::vector<TofFrame>& frames, const Burst& burst,
        std::size_t antenna) const;

    std::optional<std::pair<geom::Vec3, geom::Vec3>> burst_endpoints(
        const std::vector<TofFrame>& frames, const Burst& burst) const;

    PointingConfig config_;
    Localizer localizer_;
    std::size_t num_rx_;
};

}  // namespace witrack::core
