// Multi-person tracking extension (paper Section 10). With two movers, each
// antenna observes two TOFs; any choice of one TOF per antenna defines an
// ellipsoid-intersection candidate, giving up to 8 candidate positions of
// which only 2 are real. The paper suggests disambiguating with trajectory
// continuity -- exactly what this tracker does: each person is a 3D
// constant-velocity Kalman track, and every frame the pair of candidates
// that best matches the predicted positions (while staying mutually
// exclusive per antenna where possible) is selected.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/localize.hpp"
#include "core/params.hpp"
#include "core/tof.hpp"
#include "dsp/kalman.hpp"
#include "geom/array_geometry.hpp"

namespace witrack::core {

class MultiPersonTracker {
  public:
    MultiPersonTracker(const PipelineConfig& config, const geom::ArrayGeometry& array,
                       std::size_t max_people = 2);

    struct PersonEstimate {
        geom::Vec3 position;
        bool fresh = false;  ///< updated this frame (vs coasted prediction)
    };

    /// Process one TOF frame that carries multi-peak contours
    /// (config.contour_peaks >= max_people).
    std::vector<PersonEstimate> process(const TofFrame& frame, double time_s);

    std::size_t max_people() const { return max_people_; }

    /// Serialize per-person filter tracks and the inter-frame bookkeeping.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    struct Track {
        dsp::PositionKalman filter;
        bool initialized = false;
        std::size_t misses = 0;  ///< consecutive frames without a candidate
        explicit Track(const PipelineConfig& c)
            : filter(c.position_process_noise, c.position_measurement_noise * 2.0) {}
    };

    /// Candidate positions from all combinations of per-antenna peaks.
    std::vector<TrackPoint> candidates(const TofFrame& frame, double time_s) const;

    PipelineConfig config_;
    Localizer localizer_;
    std::size_t max_people_;
    std::vector<Track> tracks_;
    double last_time_s_ = 0.0;
    bool have_time_ = false;
};

}  // namespace witrack::core
