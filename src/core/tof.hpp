// Per-antenna TOF estimation chain (paper Section 4 end to end): sweep
// averaging + range FFT -> background subtraction -> bottom-contour
// extraction -> denoising, for each receive antenna independently. Attach
// a WorkerPool to fan the per-RX chains out across threads: every antenna's
// state (background model, denoiser, FFT lane, scratch profiles) is
// rx-disjoint and the ContourTracker is stateless, so the parallel output
// is bit-identical to the serial one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/frame_buffer.hpp"
#include "core/background.hpp"
#include "core/contour.hpp"
#include "core/denoise.hpp"
#include "core/params.hpp"
#include "core/range_fft.hpp"
#include "core/step_profiler.hpp"

namespace witrack::common {
class WorkerPool;
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::core {

/// Per-antenna observations for one frame.
struct AntennaFrame {
    ContourPoint contour;                 ///< raw bottom-contour observation
    std::optional<double> denoised_m;     ///< cleaned round-trip distance
    std::vector<ContourPoint> peaks;      ///< multi-peak output (if enabled)
    std::vector<double> profile;          ///< subtracted magnitudes (if recording)
    /// False when the frame's quality plane declared this RX lane dead
    /// (hardware dropout): the chain was skipped, denoised_m is empty, and
    /// the lane's background/denoiser state was held, not updated.
    bool hw_valid = true;
};

struct TofFrame {
    double time_s = 0.0;
    std::vector<AntennaFrame> antennas;

    bool all_valid() const {
        if (antennas.empty()) return false;
        for (const auto& a : antennas)
            if (!a.denoised_m) return false;
        return true;
    }

    std::vector<double> round_trips() const {
        std::vector<double> d;
        d.reserve(antennas.size());
        for (const auto& a : antennas) d.push_back(a.denoised_m.value_or(0.0));
        return d;
    }

    /// True when at least `quorum` antennas saw motion this frame.
    bool motion_detected(std::size_t quorum = 2) const {
        std::size_t n = 0;
        for (const auto& a : antennas)
            if (a.contour.detected) ++n;
        return n >= quorum;
    }

    /// Mean reflection extent across detecting antennas (arm-vs-body
    /// discriminator, Section 6.1).
    double mean_extent_m() const {
        double acc = 0.0;
        std::size_t n = 0;
        for (const auto& a : antennas)
            if (a.contour.detected) {
                acc += a.contour.extent_m;
                ++n;
            }
        return n > 0 ? acc / static_cast<double>(n) : 0.0;
    }
};

class TofEstimator {
  public:
    /// `plans` selects the FFT plan cache shared by the per-antenna range
    /// transforms (nullptr = the process-global FftPlanCache), so many
    /// estimators -- e.g. one per tracking session in a fleet host -- never
    /// duplicate twiddle tables.
    TofEstimator(const PipelineConfig& config, std::size_t num_rx,
                 dsp::FftPlanCache* plans = nullptr);

    /// Process one frame of raw sweeps (contiguous rx-major storage). This
    /// is the realtime hot path: zero heap allocations at steady state.
    /// The returned frame is a persistent member reused every call -- copy
    /// it (capacity-reusing copy-assign) or consume it before the next
    /// frame. FrameBuffer is the only ingestion type.
    const TofFrame& process_frame(const FrameBuffer& frame, double time_s);

    /// Split-step form of process_frame for batched FFT execution: average
    /// each antenna's sweeps and *stage* its range FFT into `batch` now
    /// (one FFT lane per antenna); after the caller runs the batch,
    /// finish_frame() runs the remainder of every antenna's chain
    /// (subtraction, contour, gating, denoise) and returns the frame
    /// (same persistent member as process_frame). Per-antenna state
    /// mutates only in finish_frame, and the result is bit-identical to
    /// process_frame. Exactly one finish_frame call must follow each
    /// stage_frame; `frame` must stay alive in between.
    void stage_frame(const FrameBuffer& frame, double time_s,
                     dsp::FftBatch& batch);
    const TofFrame& finish_frame();

    /// Accumulated per-step cycle counters of the analysis chain (range
    /// FFT, background subtract, contour+gating, denoise), rolled up
    /// across antennas after every frame. take_step_stats() returns and
    /// resets the accumulation window.
    struct StepStats {
        StepCounter fft, subtract, contour, denoise;

        void merge(const StepStats& other) {
            fft.merge(other.fft);
            subtract.merge(other.subtract);
            contour.merge(other.contour);
            denoise.merge(other.denoise);
        }
        void reset() {
            fft.reset();
            subtract.reset();
            contour.reset();
            denoise.reset();
        }
    };
    StepStats take_step_stats() {
        StepStats stats = step_stats_;
        step_stats_.reset();
        return stats;
    }

    /// Static-training extension: learn the empty scene from these frames
    /// (switches the background mode for all antennas).
    void enable_static_training();
    void train_background(const FrameBuffer& frame);

    /// Fan the per-antenna chains out across `pool` on subsequent
    /// process_frame calls (nullptr restores the serial path). The pool is
    /// borrowed and must outlive the estimator; output is bit-identical to
    /// serial either way.
    void set_worker_pool(common::WorkerPool* pool);

    const PipelineConfig& config() const { return config_; }
    std::size_t num_rx() const { return per_rx_.size(); }

    /// The FFT lane bank (exposes the shared plan for sharing proofs).
    const SweepProcessorBank& processors() const { return processors_; }

    void reset();

    /// Serialize per-antenna training/streak state (background model,
    /// denoiser, gate streak). Scratch buffers and FFT lanes are rebuilt
    /// per frame and are not part of the state.
    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    struct PerAntenna {
        BackgroundSubtractor background;
        TofDenoiser denoiser;
        std::size_t gated_streak = 0;  ///< consecutive gate-rescued frames
        explicit PerAntenna(const PipelineConfig& config)
            : background(BackgroundMode::kFrameDiff), denoiser(config) {}
    };

    /// One antenna's full chain: range FFT (on `processor`) -> background
    /// subtraction -> contour -> gating -> denoise. Touches only rx-indexed
    /// state, so distinct rx may run concurrently on distinct processors.
    void process_rx(std::size_t rx, SweepProcessor& processor,
                    const FrameBuffer& frame, double dt, AntennaFrame& out);

    /// The post-FFT remainder of process_rx: consumes profiles_[rx] (the
    /// antenna's finalized range profile) and updates rx-indexed state.
    void post_rx(std::size_t rx, double dt, AntennaFrame& out);

    /// Latch the frame's quality plane into lane_flags_ (done once per
    /// frame, before any per-RX work, so the parallel fan-out only reads).
    void latch_quality(const FrameBuffer& frame);

    /// Emit the dead-lane observation: empty, hw_valid=false, per-antenna
    /// state untouched (background and denoiser hold across the dropout).
    static void mark_dead(AntennaFrame& out);

    /// Merge every per-RX step-counter slot into the rolled-up stats
    /// (called after the per-frame join; the slots are then zeroed).
    void roll_up_steps();

    PipelineConfig config_;
    SweepProcessorBank processors_;               ///< lane per rx when pooled
    ContourTracker contour_;
    common::WorkerPool* pool_ = nullptr;
    std::vector<PerAntenna> per_rx_;
    std::vector<RangeProfile> profiles_;          ///< reused per-rx spectra
    std::vector<std::vector<double>> magnitude_;  ///< reused per-rx profiles
    std::vector<ContourScratch> contour_scratch_; ///< reused per-rx workspace
    std::vector<StepStats> step_slots_;           ///< per-rx, race-free lanes
    StepStats step_stats_;                        ///< rolled up across rx
    TofFrame frame_out_;                          ///< persistent result frame
    double staged_time_s_ = 0.0;                  ///< timestamp of the staged frame

    /// Per-lane quality latched from the current frame: kLaneOk runs the
    /// unchanged chain, kLaneSaturated excludes the frame from background
    /// history/training, kLaneDead skips the chain entirely.
    enum : std::uint8_t { kLaneOk = 0, kLaneSaturated = 1, kLaneDead = 2 };
    std::vector<std::uint8_t> lane_flags_;
};

/// Value-type serialization for recorded TOF observations (used by stages
/// that keep TofFrame history, e.g. the pointing window).
void save_state(common::StateWriter& writer, const ContourPoint& point);
void load_state(common::StateReader& reader, ContourPoint& point);
void save_state(common::StateWriter& writer, const AntennaFrame& antenna);
void load_state(common::StateReader& reader, AntennaFrame& antenna);
void save_state(common::StateWriter& writer, const TofFrame& frame);
void load_state(common::StateReader& reader, TofFrame& frame);

}  // namespace witrack::core
