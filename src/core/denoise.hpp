// TOF denoising (paper Section 4.4): outlier rejection against impossible
// jumps, interpolation (hold) while the person is static, and Kalman
// smoothing of each antenna's round-trip distance stream.
#pragma once

#include <cstddef>
#include <optional>

#include "core/contour.hpp"
#include "core/params.hpp"
#include "dsp/kalman.hpp"

namespace witrack::common {
class StateWriter;
class StateReader;
}  // namespace witrack::common

namespace witrack::core {

class TofDenoiser {
  public:
    explicit TofDenoiser(const PipelineConfig& config);

    /// Feed one contour observation (dt seconds after the previous one);
    /// returns the denoised round-trip distance, or nullopt before the
    /// first detection.
    std::optional<double> update(const ContourPoint& contour, double dt);

    /// Number of consecutive outliers currently being rejected.
    std::size_t outlier_streak() const { return outlier_streak_; }

    bool tracking() const { return last_value_.has_value(); }

    /// Last accepted (filtered) round-trip distance, if any.
    const std::optional<double>& last_value() const { return last_value_; }

    void reset();

    void save_state(common::StateWriter& writer) const;
    void load_state(common::StateReader& reader);

  private:
    void accept(double measurement, double dt);

    PipelineConfig config_;
    dsp::ScalarKalman kalman_;
    std::optional<double> last_value_;
    std::size_t outlier_streak_ = 0;
    std::size_t closer_streak_ = 0;
};

}  // namespace witrack::core
