// witrackd: the WiTrack fleet daemon. One process = one EngineHost serving
// many tracking sessions, driven entirely over the network:
//
//   * frames arrive as WTNF datagrams on per-session UDP ingest ports
//     (net::NetSource), or are synthesized in-process for sim tenants;
//   * operators drive the fleet over the TCP control plane
//     (net::ControlServer line protocol on 127.0.0.1).
//
// Server:  witrackd [--control-port P] [--max-sessions N] [--workers W]
//                   [--max-frame-lag R] [--stats-every SEC]
//                   [--net-idle-timeout SEC] [--run-seconds SEC] [--idle-exit]
//                   [--health-threshold H] [--health-window F]
//                   [--max-restarts N]
// Client:  witrackd --port P --cmd "STATS"
//
// On top of the ControlServer builtins (PING / STATS / HEALTH / PAUSE /
// RESUME / EVICT / CHECKPOINT) the daemon registers:
//
//   ADMIT sim <name> <seed> <seconds> [faults]
//                                         synthetic walk tenant; the
//                                         optional WITRACK_HW_FAULTS-style
//                                         spec (e.g. "dropout=0.1,seed=7")
//                                         attaches a hardware fault
//                                         injector. Sim tenants are
//                                         restartable: with
//                                         --health-threshold set, the
//                                         host's watchdog auto-checkpoints
//                                         and restarts them in place when
//                                         their health stays low.
//   ADMIT net <name> <udp_port> <token>   UDP-fed tenant (0 = ephemeral
//                                         port, echoed in the response)
//   DRAIN                                 stop admitting, exit when drained
//
// SIGINT is a clean DRAIN: in-flight sessions finish, stats are printed,
// the process exits 0. Note one scheduling tradeoff inherited from the
// blocking FrameSource contract: a net tenant whose sender goes silent
// holds its step_all() slot until --net-idle-timeout expires (once; the
// session then ends with the silence counted in idle_timeouts).
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "engine/engine.hpp"
#include "engine/host.hpp"
#include "engine/sim_source.hpp"
#include "net/control_server.hpp"
#include "net/net_source.hpp"
#include "net/udp_socket.hpp"
#include "sim/motion.hpp"

using namespace witrack;

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
void handle_sigint(int) { g_interrupted = 1; }

engine::EngineConfig tenant_config(std::uint64_t seed) {
    engine::EngineConfig config;
    config.with_fast_capture(true).with_seed(seed);
    return config;
}

bool parse_u64(const std::string& word, std::uint64_t& value) {
    if (word.empty()) return false;
    value = 0;
    for (char c : word) {
        if (c < '0' || c > '9') return false;
        if (value > (UINT64_MAX - 9) / 10) return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
}

int run_client(const CliArgs& args) {
    const int port = args.get_int("port", 0);
    if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "witrackd --cmd needs --port <control port>\n");
        return 2;
    }
    try {
        net::ControlClient client(static_cast<std::uint16_t>(port));
        const std::string response = client.request(args.get("cmd"));
        std::printf("%s\n", response.c_str());
        return response.rfind("OK", 0) == 0 ? 0 : 1;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "witrackd: %s\n", error.what());
        return 2;
    }
}

}  // namespace

int main(int argc, char** argv) {
    const CliArgs args(argc, argv);
    if (args.has("cmd")) return run_client(args);

    engine::EngineHost host(
        engine::HostConfig{}
            .with_workers(static_cast<std::size_t>(args.get_int("workers", 0)))
            .with_max_sessions(
                static_cast<std::size_t>(args.get_int("max-sessions", 8)))
            .with_queue_when_full(true)
            .with_max_frame_lag(
                static_cast<std::size_t>(args.get_int("max-frame-lag", 500)))
            .with_health_threshold(args.get_double("health-threshold", 0.0))
            .with_health_window(
                static_cast<std::size_t>(args.get_int("health-window", 64)))
            .with_max_restarts(
                static_cast<std::size_t>(args.get_int("max-restarts", 3))));
    net::ControlServer control(
        host, static_cast<std::uint16_t>(args.get_int("control-port", 0)));

    const double stats_every_s = args.get_double("stats-every", 5.0);
    const double net_idle_timeout_s = args.get_double("net-idle-timeout", 5.0);
    const double run_seconds = args.get_double("run-seconds", 0.0);
    const bool idle_exit = args.has("idle-exit");

    bool draining = false;
    bool admitted_any = false;

    control.register_command(
        "ADMIT", [&](const std::vector<std::string>& argv_) -> std::string {
            if (draining) return "ERR draining, admission closed";
            if (argv_.size() >= 4 && argv_[0] == "sim") {
                std::uint64_t seed = 0;
                std::uint64_t seconds = 0;
                if (!parse_u64(argv_[2], seed) || !parse_u64(argv_[3], seconds) ||
                    seconds == 0 || seconds > 3600)
                    return "ERR usage: ADMIT sim <name> <seed> <seconds> "
                           "[faults]";
                const auto config = tenant_config(seed);
                // Parse a bad fault spec here (-> "ERR ..." to the
                // operator), not inside the factory at restart time.
                hw::FaultConfig faults;
                const bool has_faults = argv_.size() >= 5;
                if (has_faults) faults = hw::parse_fault_spec(argv_[4]);
                // Restartable: the factory rebuilds the deterministic
                // source for each incarnation, so the watchdog can
                // checkpoint + restart the tenant in place.
                auto factory = [config, seconds, faults, has_faults]() {
                    auto walk = std::make_unique<sim::LineWalkScript>(
                        geom::Vec3{-1.5, 5, 0}, geom::Vec3{1.5, 5, 0},
                        static_cast<double>(seconds), 1.0);
                    auto source = std::make_unique<engine::SimSource>(
                        config, std::move(walk));
                    if (has_faults)
                        source->set_fault_injector(
                            std::make_unique<hw::FaultInjector>(faults));
                    return std::unique_ptr<engine::FrameSource>(
                        std::move(source));
                };
                const auto id = host.admit_restartable(argv_[1], config,
                                                       std::move(factory));
                admitted_any = true;
                return "OK admitted " + std::to_string(id);
            }
            if (argv_.size() >= 4 && argv_[0] == "net") {
                std::uint64_t port = 0;
                std::uint64_t token = 0;
                if (!parse_u64(argv_[2], port) || port > 65535 ||
                    !parse_u64(argv_[3], token))
                    return "ERR usage: ADMIT net <name> <udp_port> <token>";
                auto socket = std::make_unique<net::UdpSocket>(
                    static_cast<std::uint16_t>(port));
                const std::uint16_t bound = socket->local_port();
                net::NetSourceConfig net_config;
                net_config.session_token = token;
                net_config.idle_timeout_s = net_idle_timeout_s;
                const auto id = host.admit(
                    argv_[1], tenant_config(token),
                    std::make_unique<net::NetSource>(std::move(socket),
                                                     net_config));
                admitted_any = true;
                return "OK admitted " + std::to_string(id) + " udp " +
                       std::to_string(bound);
            }
            return "ERR usage: ADMIT sim <name> <seed> <seconds> | "
                   "ADMIT net <name> <udp_port> <token>";
        });
    control.register_command("DRAIN", [&](const std::vector<std::string>&) {
        draining = true;
        return std::string("OK draining");
    });

    std::signal(SIGINT, handle_sigint);
    std::signal(SIGTERM, handle_sigint);

    // The one line a launcher can parse for the ephemeral port.
    std::printf("witrackd: control plane on 127.0.0.1:%u (%zu worker(s), "
                "%zu-session cap)\n",
                static_cast<unsigned>(control.port()), host.workers(),
                host.config().max_sessions);
    std::fflush(stdout);

    const auto started = std::chrono::steady_clock::now();
    auto last_stats = started;
    for (;;) {
        if (g_interrupted) {
            draining = true;
            g_interrupted = 0;
            std::printf("witrackd: interrupt, draining\n");
            std::fflush(stdout);
        }
        control.poll();
        const std::size_t frames = host.step_all();

        const auto now = std::chrono::steady_clock::now();
        const double up_s =
            std::chrono::duration<double>(now - started).count();
        // Reap on the stats cadence, after the print: a session that just
        // finished shows up in one final periodic line (with its lifetime
        // net counters) before leaving the registry.
        if (stats_every_s > 0.0) {
            if (std::chrono::duration<double>(now - last_stats).count() >=
                stats_every_s) {
                last_stats = now;
                const std::string json =
                    engine::to_json(host.take_fleet_stats());
                std::printf("witrackd: %s\n", json.c_str());
                std::fflush(stdout);
                host.reap();
            }
        } else {
            host.reap();
        }

        const bool idle =
            host.active_sessions() == 0 && host.queued_sessions() == 0;
        if (draining && idle) break;
        if (idle_exit && admitted_any && idle) break;
        if (run_seconds > 0.0 && up_s >= run_seconds) break;
        // Nothing stepped: park in the control socket's poll so the loop
        // stays responsive without spinning a core.
        if (frames == 0) control.poll(5);
    }

    host.reap();
    std::printf("witrackd: drained, %s\n",
                engine::to_json(host.take_fleet_stats()).c_str());
    return 0;
}
