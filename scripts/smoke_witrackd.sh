#!/usr/bin/env bash
# Smoke the witrackd fleet daemon end to end over its own control plane:
# boot on an ephemeral port, PING it, admit a sim tenant, scrape a stats
# line, DRAIN, and require a clean exit 0 once the fleet is empty. Run by
# scripts/check.sh (Release) and the Release CI lane.
#
# Usage: scripts/smoke_witrackd.sh [build-dir]   (default: build-release)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build-release}"
daemon="${build_dir}/witrackd"
[ -x "${daemon}" ] || { echo "smoke_witrackd: ${daemon} not built"; exit 1; }

log="$(mktemp)"
"${daemon}" --stats-every 1 --run-seconds 120 > "${log}" 2>&1 &
daemon_pid=$!
cleanup() {
  kill "${daemon_pid}" 2>/dev/null || true
  rm -f "${log}"
}
trap cleanup EXIT

# The first stdout line carries the ephemeral control port.
port=""
for _ in $(seq 100); do
  port="$(sed -n 's/.*control plane on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${log}" | head -n 1)"
  [ -n "${port}" ] && break
  sleep 0.1
done
[ -n "${port}" ] || { echo "smoke_witrackd: no control port in ${log}"; cat "${log}"; exit 1; }

run() {
  local expect="$1"; shift
  local out
  out="$("${daemon}" --port "${port}" --cmd "$*")"
  echo "  $* -> ${out:0:100}"
  case "${out}" in
    ${expect}*) ;;
    *) echo "smoke_witrackd: '$*' answered '${out}', wanted '${expect}...'"; exit 1 ;;
  esac
}

run "OK pong" PING
run "OK admitted" ADMIT sim smoke-home 42 1
run "OK {" STATS
"${daemon}" --port "${port}" --cmd STATS | grep -q '"sessions_admitted":1' \
  || { echo "smoke_witrackd: stats scrape missing the admitted session"; exit 1; }
run "OK draining" DRAIN

# Drained fleet => clean exit 0, well before the --run-seconds backstop.
wait "${daemon_pid}"
echo "witrackd smoke: OK"
