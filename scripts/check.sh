#!/usr/bin/env bash
# Tier-1 verify in both configurations, warnings-as-errors, Release example
# smoke runs, plus the standalone header self-sufficiency audit. CI's main
# job invokes this script directly (.github/workflows/ci.yml), so the two
# cannot diverge; the sanitizer jobs in CI add ASan/UBSan/TSan configs on
# top of this.
set -euo pipefail

cd "$(dirname "$0")/.."

for config in Debug Release; do
  build_dir="build-${config,,}"
  echo "=== ${config} ==="
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}" -DWITRACK_WERROR=ON
  cmake --build "${build_dir}" -j
  # The FFT kernel accuracy gate runs first and explicitly: the
  # SoA/pruned/half-spectrum kernels must match the direct DFT in this
  # exact configuration (rounding differs between -O0 and -O3 vectorized
  # code, so both matter). The general ctest run excludes it so the suite
  # runs exactly once per configuration.
  echo "=== ${config}: FFT accuracy suite ==="
  (cd "${build_dir}" && ctest -R '^test_fft$' --output-on-failure)
  # The snapshot/restore parity suite also runs explicitly per configuration:
  # bit-identical resume depends on doubles surviving serialization verbatim,
  # which must hold under both -O0 and -O3 code generation.
  echo "=== ${config}: snapshot parity suite ==="
  (cd "${build_dir}" && ctest -R '^test_snapshot$' --output-on-failure)
  # The general run excludes the two suites above (each runs exactly once
  # per configuration) and the soak label (a dedicated CI lane owns it).
  (cd "${build_dir}" && ctest -E '^(test_fft|test_snapshot)$' -LE soak --output-on-failure -j)
done

echo "=== example smoke (Release) ==="
for example in build-release/example_*; do
  [ -x "${example}" ] || continue
  echo "--- ${example}"
  "${example}" > /dev/null
done

echo "=== witrackd smoke (Release) ==="
scripts/smoke_witrackd.sh build-release

echo "=== hardware fault campaign (Release) ==="
# WITRACK_HW_FAULTS arms every SimSource in the process with an
# identically-seeded hw::FaultInjector, so the bit-parity suites re-prove
# their contracts on degraded hardware: host/standalone, serial/parallel
# and snapshot/restore outputs must stay bit-identical with faults active,
# and test_faults keeps the exact injector<->QualityStats accounting. The
# full sweep (more campaigns, heavier rates) runs in CI's fault-matrix
# lane; this is its one-campaign smoke.
(cd build-release &&
  WITRACK_HW_FAULTS="dropout=0.03,saturation=0.05,sweep_drop=0.02,seed=2026" \
  ctest -R '^(test_faults|test_fleet|test_snapshot)$' --output-on-failure)

echo "=== header self-sufficiency ==="
fails=0
while IFS= read -r header; do
  if ! echo "#include \"${header}\"" |
      g++ -std=c++20 -fsyntax-only -Wall -Wextra -Werror -Isrc -Ibench -x c++ -; then
    echo "not self-sufficient: ${header}"
    fails=$((fails + 1))
  fi
done < <(find src bench -name "*.hpp" | sort)
[ "${fails}" -eq 0 ]

echo "All checks passed."
